lib/runtime/ctx.ml: Atomic Random
