lib/runtime/shared_array.ml: Addr Array Atomic Ctx
