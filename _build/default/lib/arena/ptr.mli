(** Tagged record pointers.

    A pointer packs, into one immediate integer: a mark bit (used by
    lock-free algorithms that mark a pointer before removing its target), the
    owning arena's id within its heap, a 20-bit allocation generation, and
    the slot index.  The generation tag is what lets the arena detect
    use-after-free and ABA on reused slots: a freed slot's generation is
    bumped, so any surviving pointer to the old incarnation no longer
    validates.

    Layout (bit 0 = LSB):  [ slot+1 | gen:20 | arena:4 | mark:1 ]. *)

type t = int

val null : t

(** [is_null p] ignores the mark bit, so a marked null is still null. *)
val is_null : t -> bool

val make : arena:int -> slot:int -> gen:int -> t

val mark : t -> t
val unmark : t -> t
val is_marked : t -> bool

val arena_id : t -> int
val slot : t -> int
val gen : t -> int

val gen_bits : int
val gen_mask : int
val max_arenas : int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
