lib/arena/ptr.ml: Format
