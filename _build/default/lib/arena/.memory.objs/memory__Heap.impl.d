lib/arena/heap.ml: Arena Array Ptr
