lib/arena/arena.ml: Array Atomic Printf Ptr Runtime
