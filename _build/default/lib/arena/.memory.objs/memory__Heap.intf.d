lib/arena/heap.mli: Arena Ptr Runtime
