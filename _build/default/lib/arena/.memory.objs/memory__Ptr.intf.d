lib/arena/ptr.mli: Format
