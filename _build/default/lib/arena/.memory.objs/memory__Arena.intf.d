lib/arena/arena.mli: Ptr Runtime
