type t = int

let gen_bits = 20
let gen_mask = (1 lsl gen_bits) - 1
let arena_bits = 4
let max_arenas = 1 lsl arena_bits
let arena_mask = max_arenas - 1

let null = 0
let is_null p = p land -2 = 0

let make ~arena ~slot ~gen =
  assert (arena >= 0 && arena < max_arenas);
  assert (slot >= 0);
  (((((slot + 1) lsl gen_bits) lor (gen land gen_mask)) lsl arena_bits)
  lor arena)
  lsl 1

let mark p = p lor 1
let unmark p = p land -2
let is_marked p = p land 1 = 1

let arena_id p = (p lsr 1) land arena_mask
let gen p = (p lsr (1 + arena_bits)) land gen_mask
let slot p = (p lsr (1 + arena_bits + gen_bits)) - 1

let pp fmt p =
  if is_null p then Format.fprintf fmt "null%s" (if is_marked p then "!" else "")
  else
    Format.fprintf fmt "a%d/s%d/g%d%s" (arena_id p) (slot p) (gen p)
      (if is_marked p then "!" else "")

let to_string p = Format.asprintf "%a" pp p
