lib/ds/ms_queue.ml: List Memory Reclaim Runtime
