lib/ds/efrb_bst.mli: Memory Reclaim Runtime
