lib/ds/hm_list.mli: Memory Reclaim Runtime
