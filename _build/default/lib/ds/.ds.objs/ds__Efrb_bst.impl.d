lib/ds/efrb_bst.ml: List Memory Reclaim Runtime
