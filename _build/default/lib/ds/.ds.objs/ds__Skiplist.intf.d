lib/ds/skiplist.mli: Memory Reclaim Runtime
