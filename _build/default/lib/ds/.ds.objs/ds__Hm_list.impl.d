lib/ds/hm_list.ml: List Memory Reclaim Runtime
