lib/ds/treiber_stack.ml: List Memory Reclaim Runtime
