lib/ds/treiber_stack.mli: Memory Reclaim Runtime
