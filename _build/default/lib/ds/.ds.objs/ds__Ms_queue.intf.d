lib/ds/ms_queue.mli: Memory Reclaim Runtime
