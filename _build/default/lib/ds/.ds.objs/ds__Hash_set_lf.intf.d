lib/ds/hash_set_lf.mli: Hm_list Reclaim Runtime
