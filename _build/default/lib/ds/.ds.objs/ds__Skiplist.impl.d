lib/ds/skiplist.ml: Array List Memory Random Reclaim Runtime
