lib/ds/hash_set_lf.ml: Array Hm_list List Reclaim
