(** Harris-Michael lock-free linked-list set, written once against the
    Record Manager abstraction.

    A node's [next] field carries the mark bit: a marked next pointer means
    the node is logically deleted.  The process whose CAS physically unlinks
    a node retires it with the Record Manager, which decides when it can be
    reused.

    Hazard-pointer discipline follows Michael's original algorithm: a newly
    reached node is [protect]ed and then verified by re-reading the
    predecessor's next pointer — sound here because nodes are retired only
    after being unlinked, and the traversal restarts from the head on any
    inconsistency.  Epoch-style reclaimers make [protect] free and let
    traversals walk retired nodes.

    Operations follow the paper's Fig. 5 shape: allocation in a quiescent
    preamble, the body between [leave_qstate]/[enter_qstate].  Under DEBRA+
    a neutralized operation simply restarts: every update is a single
    published CAS, so there is no partial state to repair and no descriptor
    to help. *)

module Make (RM : Reclaim.Intf.RECORD_MANAGER) = struct
  let f_next = 0 (* mutable: successor pointer; mark bit = logically deleted *)
  let c_key = 0
  let c_value = 1

  type t = {
    rm : RM.t;
    arena : Memory.Arena.t;
    head : Memory.Ptr.t;  (* sentinel, never retired *)
  }

  (* [create_in] builds a list whose nodes live in an existing arena, so
     many lists (e.g. the buckets of a hash set) can share one arena and
     one Record Manager. *)
  let create_in arena rm =
    let env = RM.env rm in
    let ctx = Runtime.Group.ctx env.Reclaim.Intf.Env.group 0 in
    let head = RM.alloc rm ctx arena in
    Memory.Arena.set_const ctx arena head c_key min_int;
    Memory.Arena.write ctx arena head f_next Memory.Ptr.null;
    { rm; arena; head }

  let node_arena rm ~capacity =
    let env = RM.env rm in
    Memory.Heap.new_arena env.Reclaim.Intf.Env.heap ~name:"hm_list.node"
      ~mut_fields:1 ~const_fields:2 ~capacity:(capacity + 1)

  let create rm ~capacity = create_in (node_arena rm ~capacity) rm

  let arena t = t.arena
  let key_of t ctx p = Memory.Arena.get_const ctx t.arena p c_key
  let next_of t ctx p = Memory.Arena.read ctx t.arena p f_next

  exception Restart

  (* [find t ctx key] returns (prev, cur) with prev.next = cur, cur the
     first node of key >= [key] (or null), and both protected (prev's
     protection is skipped for the permanent head).  Marked nodes met along
     the way are unlinked and retired. *)
  let find t ctx key =
    let rec from_head () =
      match scan t.head (next_of t ctx t.head) with
      | position -> position
      | exception Restart ->
          RM.unprotect_all t.rm ctx;
          from_head ()
    and scan prev cur =
      if Memory.Ptr.is_null cur then (prev, cur)
      else begin
        let cur = Memory.Ptr.unmark cur in
        let ok =
          RM.protect t.rm ctx cur ~verify:(fun () -> next_of t ctx prev = cur)
        in
        if not ok then raise Restart;
        let next = next_of t ctx cur in
        if Memory.Ptr.is_marked next then begin
          (* cur is logically deleted: unlink it. *)
          let next = Memory.Ptr.unmark next in
          if Memory.Arena.cas ctx t.arena prev f_next ~expect:cur next then begin
            RM.retire t.rm ctx cur;
            RM.unprotect t.rm ctx cur;
            scan prev next
          end
          else raise Restart
        end
        else if key_of t ctx cur >= key then (prev, cur)
        else begin
          if prev <> t.head then RM.unprotect t.rm ctx prev;
          scan cur next
        end
      end
    in
    from_head ()

  (* Preamble/body/postamble shell shared by all operations. *)
  let with_op t ctx body =
    let result =
      RM.run_op t.rm ctx
        ~recover:(fun () ->
          (* Single-CAS updates leave nothing to help: clean up and restart. *)
          RM.runprotect_all t.rm ctx;
          RM.unprotect_all t.rm ctx;
          None)
        (fun () ->
          RM.leave_qstate t.rm ctx;
          let r = body () in
          RM.enter_qstate t.rm ctx;
          r)
    in
    ctx.Runtime.Ctx.stats.Runtime.Ctx.ops <-
      ctx.Runtime.Ctx.stats.Runtime.Ctx.ops + 1;
    result

  let contains t ctx key =
    with_op t ctx (fun () ->
        let _, cur = find t ctx key in
        (not (Memory.Ptr.is_null cur)) && key_of t ctx cur = key)

  let get t ctx key =
    with_op t ctx (fun () ->
        let _, cur = find t ctx key in
        if (not (Memory.Ptr.is_null cur)) && key_of t ctx cur = key then
          Some (Memory.Arena.get_const ctx t.arena cur c_value)
        else None)

  let insert t ctx ~key ~value =
    (* Quiescent preamble: allocate and initialize the candidate node; it
       survives restarts and is released if the key turns out present. *)
    let node = RM.alloc t.rm ctx t.arena in
    Memory.Arena.set_const ctx t.arena node c_key key;
    Memory.Arena.set_const ctx t.arena node c_value value;
    let inserted =
      with_op t ctx (fun () ->
          let rec attempt () =
            let prev, cur = find t ctx key in
            if (not (Memory.Ptr.is_null cur)) && key_of t ctx cur = key then
              false
            else begin
              Memory.Arena.write ctx t.arena node f_next cur;
              if Memory.Arena.cas ctx t.arena prev f_next ~expect:cur node then
                true
              else begin
                RM.unprotect_all t.rm ctx;
                attempt ()
              end
            end
          in
          attempt ())
    in
    if not inserted then RM.dealloc t.rm ctx node;
    inserted

  let delete t ctx key =
    (* The mark CAS is the linearization point, but the operation keeps
       accessing shared memory afterwards (the unlink attempt), so a
       neutralization there must not restart the operation: [linearized]
       plays the role of Fig. 5's descriptor check in recovery.  It is set
       with no instrumented access (hence no neutralization point) between
       the successful CAS and the assignment. *)
    let linearized = ref false in
    let result =
      RM.run_op t.rm ctx
        ~recover:(fun () ->
          RM.runprotect_all t.rm ctx;
          RM.unprotect_all t.rm ctx;
          if !linearized then Some true else None)
        (fun () ->
          RM.leave_qstate t.rm ctx;
          let rec attempt () =
            let prev, cur = find t ctx key in
            if Memory.Ptr.is_null cur || key_of t ctx cur <> key then false
            else begin
              let next = next_of t ctx cur in
              if Memory.Ptr.is_marked next then begin
                RM.unprotect_all t.rm ctx;
                attempt ()
              end
              else if
                Memory.Arena.cas ctx t.arena cur f_next ~expect:next
                  (Memory.Ptr.mark next)
              then begin
                linearized := true;
                (* Logically deleted; unlink now or let a later find clean
                   up. *)
                if Memory.Arena.cas ctx t.arena prev f_next ~expect:cur next
                then RM.retire t.rm ctx cur
                else begin
                  RM.unprotect_all t.rm ctx;
                  ignore (find t ctx key)
                end;
                true
              end
              else begin
                RM.unprotect_all t.rm ctx;
                attempt ()
              end
            end
          in
          let r = attempt () in
          RM.enter_qstate t.rm ctx;
          r)
    in
    ctx.Runtime.Ctx.stats.Runtime.Ctx.ops <-
      ctx.Runtime.Ctx.stats.Runtime.Ctx.ops + 1;
    result

  (* Uninstrumented helpers for tests and invariant checks. *)

  let to_list t =
    let rec go acc p =
      if Memory.Ptr.is_null p then List.rev acc
      else
        let p = Memory.Ptr.unmark p in
        let key = Memory.Arena.peek_const t.arena p c_key in
        let next = Memory.Arena.peek t.arena p f_next in
        let acc = if Memory.Ptr.is_marked next then acc else key :: acc in
        go acc next
    in
    go [] (Memory.Arena.peek t.arena t.head f_next)

  let size t = List.length (to_list t)

  exception Broken of string

  let check_invariants t =
    let rec go prev_key p n =
      if n > Memory.Arena.capacity t.arena then
        raise (Broken "cycle or overlong chain");
      if not (Memory.Ptr.is_null p) then begin
        let p = Memory.Ptr.unmark p in
        if not (Memory.Arena.is_valid t.arena p) then
          raise (Broken "reachable node is freed");
        let key = Memory.Arena.peek_const t.arena p c_key in
        let next = Memory.Arena.peek t.arena p f_next in
        if not (Memory.Ptr.is_marked next) && key <= prev_key then
          raise (Broken "keys not strictly increasing");
        go (max key prev_key) next (n + 1)
      end
    in
    go min_int (Memory.Arena.peek t.arena t.head f_next) 0
end
