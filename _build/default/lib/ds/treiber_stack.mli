(** Treiber lock-free stack over the Record Manager abstraction.  ABA on
    the top pointer is excluded by generation-tagged pointers for correct
    schemes and detected (raised) for broken ones. *)

module Make (RM : Reclaim.Intf.RECORD_MANAGER) : sig
  val f_next : int
  val c_value : int

  type t = { rm : RM.t; arena : Memory.Arena.t; top : int Runtime.Svar.t }

  val create : RM.t -> capacity:int -> t
  val push : t -> Runtime.Ctx.t -> int -> unit
  val pop : t -> Runtime.Ctx.t -> int option

  (** Uninstrumented inspection (quiescent callers only). *)

  val to_list : t -> int list
  val size : t -> int
end
