(** Treiber lock-free stack over the Record Manager abstraction.

    The entry point is a single shared top pointer.  Because pointers carry
    allocation generations, the classic Treiber ABA (pop reads top=A, A is
    freed and reallocated as top again, stale CAS succeeds) is prevented for
    any correct reclamation scheme and {e detected} for a broken one: a
    stale CAS's expected pointer no longer matches after the slot's
    generation is bumped.

    HP discipline: protect the observed top and verify it is still the top;
    nodes are retired only after being popped, so the verification is
    sound. *)

module Make (RM : Reclaim.Intf.RECORD_MANAGER) = struct
  let f_next = 0
  let c_value = 0

  type t = {
    rm : RM.t;
    arena : Memory.Arena.t;
    top : int Runtime.Svar.t;
  }

  let create rm ~capacity =
    let env = RM.env rm in
    let arena =
      Memory.Heap.new_arena env.Reclaim.Intf.Env.heap ~name:"stack.node"
        ~mut_fields:1 ~const_fields:1 ~capacity
    in
    { rm; arena; top = Runtime.Svar.make Memory.Ptr.null }

  let finish_op _t ctx =
    ctx.Runtime.Ctx.stats.Runtime.Ctx.ops <-
      ctx.Runtime.Ctx.stats.Runtime.Ctx.ops + 1

  (* The publishing CAS is the last shared access of a push, so a
     neutralized push can always restart. *)
  let push t ctx value =
    let node = RM.alloc t.rm ctx t.arena in
    Memory.Arena.set_const ctx t.arena node c_value value;
    RM.run_op t.rm ctx
      ~recover:(fun () ->
        RM.unprotect_all t.rm ctx;
        None)
      (fun () ->
        RM.leave_qstate t.rm ctx;
        let rec attempt () =
          let top = Runtime.Svar.get ctx t.top in
          Memory.Arena.write ctx t.arena node f_next top;
          if not (Runtime.Svar.cas ctx t.top ~expect:top node) then attempt ()
        in
        attempt ();
        RM.enter_qstate t.rm ctx);
    finish_op t ctx

  (* Pop retires the node after its linearizing CAS, so recovery must finish
     that bookkeeping instead of restarting (cf. Fig. 5): [taken] holds the
     popped node and its value once the CAS succeeded; the only
     neutralization point after the CAS is inside [retire], before the node
     enters the limbo bag, so retiring in recovery is exactly-once. *)
  let pop t ctx =
    let taken = ref None in
    let r =
      RM.run_op t.rm ctx
        ~recover:(fun () ->
          RM.unprotect_all t.rm ctx;
          match !taken with
          | Some (node, v) ->
              RM.retire t.rm ctx node;
              Some (Some v)
          | None -> None)
        (fun () ->
          RM.leave_qstate t.rm ctx;
          let rec attempt () =
            let top = Runtime.Svar.get ctx t.top in
            if Memory.Ptr.is_null top then None
            else if
              not
                (RM.protect t.rm ctx top ~verify:(fun () ->
                     Runtime.Svar.get ctx t.top = top))
            then attempt ()
            else begin
              let next = Memory.Arena.read ctx t.arena top f_next in
              let v = Memory.Arena.get_const ctx t.arena top c_value in
              if Runtime.Svar.cas ctx t.top ~expect:top next then begin
                taken := Some (top, v);
                RM.retire t.rm ctx top;
                RM.unprotect t.rm ctx top;
                Some v
              end
              else begin
                RM.unprotect t.rm ctx top;
                attempt ()
              end
            end
          in
          let r = attempt () in
          RM.enter_qstate t.rm ctx;
          r)
    in
    finish_op t ctx;
    r

  (* Uninstrumented helpers. *)
  let to_list t =
    let rec go acc p =
      if Memory.Ptr.is_null p then List.rev acc
      else
        go
          (Memory.Arena.peek_const t.arena p c_value :: acc)
          (Memory.Arena.peek t.arena p f_next)
    in
    go [] (Runtime.Svar.peek t.top)

  let size t = List.length (to_list t)
end
