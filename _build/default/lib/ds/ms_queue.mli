(** Michael-Scott lock-free FIFO queue over the Record Manager abstraction.
    The dequeued dummy node is retired through the reclaimer; the lagging
    tail is repaired by helping. *)

module Make (RM : Reclaim.Intf.RECORD_MANAGER) : sig
  val f_next : int
  val c_value : int

  type t = {
    rm : RM.t;
    arena : Memory.Arena.t;
    head : int Runtime.Svar.t;  (** current dummy node *)
    tail : int Runtime.Svar.t;
  }

  val create : RM.t -> capacity:int -> t
  val enqueue : t -> Runtime.Ctx.t -> int -> unit
  val dequeue : t -> Runtime.Ctx.t -> int option

  (** Uninstrumented inspection (quiescent callers only). *)

  val to_list : t -> int list
  val size : t -> int
end
