(** A command-line playground: run one trial of a chosen data structure
    under a chosen reclamation scheme on a simulated machine, and print all
    the metrics the library collects.

    Examples:
      dune exec bin/debra_demo.exe -- --ds bst --scheme debra+ --procs 16
      dune exec bin/debra_demo.exe -- --ds skiplist --scheme stacktrack \
        --machine t4 --procs 32 --range 200000 --ins 25 --del 25
      dune exec bin/debra_demo.exe -- --ds list --scheme debra --procs 2 \
        --range 4 --duration 4000 --check-linearizability --history-out h.json
      dune exec bin/debra_demo.exe -- --ds queue --scheme debra+ --explore 2 *)

open Cmdliner

(* --chaos: parse a comma-separated fault list into chaos kind specs. *)
let parse_chaos_kinds s =
  if s = "" then []
  else
    String.split_on_char ',' s
    |> List.map (fun k ->
           match String.trim k with
           | "crash" -> `Crash
           | "handler" -> `Crash_in_handler
           | "neutralizer" -> `Crash_neutralizer
           | "drop" -> `Drop
           | "delay" -> `Delay
           | k when String.length k > 4 && String.sub k 0 4 = "oom:" ->
               `Oom (int_of_string (String.sub k 4 (String.length k - 4)))
           | k ->
               failwith
                 (Printf.sprintf
                    "unknown fault kind %S \
                     (crash|handler|neutralizer|drop|delay|oom:<headroom>)"
                    k))

(* --explore: skip the trial; run bounded-preemption systematic exploration
   of a small fixed workload for this ds/scheme cell, checking every
   explored schedule's history against the sequential spec. *)
let run_explore ~ds ~scheme ~budget ~seed =
  let ds = if ds = "hm_list" then "list" else ds in
  if not (List.mem ds Workload.Lin_harness.ds_names) then begin
    Printf.eprintf "--explore supports --ds %s\n"
      (String.concat "|" Workload.Lin_harness.ds_names);
    exit 1
  end;
  if not (List.mem scheme Workload.Lin_harness.scheme_names) then begin
    Printf.eprintf "--explore supports --scheme %s\n"
      (String.concat "|" Workload.Lin_harness.scheme_names);
    exit 1
  end;
  let cfg = { Workload.Lin_harness.default_config with seed } in
  Printf.printf
    "exploring %s x %s: %d procs x %d ops, keys [1,%d], preemption budget %d\n%!"
    ds scheme cfg.Workload.Lin_harness.nprocs
    cfg.Workload.Lin_harness.ops_per_proc cfg.Workload.Lin_harness.key_range
    budget;
  let v =
    Workload.Lin_harness.explore ~budget ~max_runs:2_000
      ~log:(fun m -> Printf.printf "  %s\n%!" m)
      ~ds ~scheme cfg
  in
  Printf.printf "%s\n" (Workload.Lin_harness.verdict_summary v);
  match v with
  | Lincheck.Explore.Pass _ -> ()
  | Lincheck.Explore.Fail _ -> exit 1

let run ds scheme variant backend procs range ins del duration machine seed
    sanitize chaos trace metrics_out explore check_lin history_out =
  if explore >= 0 then run_explore ~ds ~scheme ~budget:explore ~seed
  else
  let backend =
    match Exec.Backend.of_string backend with
    | Ok b -> b
    | Error msg -> failwith msg
  in
  let clock = Exec.Backend.clock backend in
  (* Sim durations are virtual-cycle budgets; on domains a cycle is a
     wall-clock ns, so floor the default at ~20 ms of real time. *)
  let duration =
    match backend with `Sim -> duration | `Domains -> max duration 20_000_000
  in
  let machine =
    match machine with
    | "t4" -> Machine.Config.oracle_t4_1
    | "i7" -> Machine.Config.intel_i7_4770
    | other -> failwith (Printf.sprintf "unknown machine %S (i7|t4)" other)
  in
  match Workload.Schemes.find_runner ~ds ~variant ~scheme with
  | None ->
      Printf.eprintf
        "no runner for ds=%s variant=%s scheme=%s; known combinations:\n" ds
        variant scheme;
      List.iter
        (fun ((d, v), rs) ->
          Printf.eprintf "  --ds %s (variant %s): %s\n" d v
            (String.concat ", "
               (List.map (fun r -> r.Workload.Schemes.rname) rs)))
        Workload.Schemes.by_name;
      exit 1
  | Some r ->
      (* A telemetry recorder is attached whenever any of its outputs is
         requested (trace file, metrics file) — percentiles then come for
         free in the printout. *)
      let telemetry =
        if trace = None && metrics_out = None then None
        else
          let tr =
            Option.map
              (fun _ ->
                Telemetry.Trace.create
                  ~cycles_per_us:(Exec.Clock.cycles_per_us clock)
                  ())
              trace
          in
          Some
            (Telemetry.Recorder.create
               ~sample_every:(max 10_000 (duration / 100))
               ?trace:tr
               ~cycles_per_ns:(Exec.Clock.cycles_per_ns clock)
               ~nprocs:procs ())
      in
      let plan =
        match parse_chaos_kinds chaos with
        | [] -> None
        | kinds -> Some (Chaos.random_plan ~seed ~nprocs:procs kinds)
      in
      Option.iter
        (fun p -> Printf.printf "chaos plan     : %s\n" (Chaos.plan_to_string p))
        plan;
      let history =
        if check_lin || history_out <> None then
          Some (Lincheck.History.recorder ~nprocs:procs)
        else None
      in
      let cfg =
        {
          Workload.Schemes.backend;
          machine;
          params = Reclaim.Intf.Params.default;
          duration;
          n = procs;
          range;
          ins;
          del;
          seed;
          capacity = range + 400_000;
          (* Faulted runs always get the sanitizer: that is the point. *)
          sanitize = sanitize || plan <> None;
          telemetry;
          stall = None;
          chaos = plan;
          budget = -1;
          max_steps = None;
          history;
        }
      in
      let o = r.Workload.Schemes.run cfg in
      let open Workload.Trial in
      Printf.printf "data structure : %s (keys [1,%d], %d%%i/%d%%d/%d%%s)\n" ds
        range ins del
        (100 - ins - del);
      Printf.printf "scheme         : %s\n" o.scheme;
      Printf.printf "machine        : %s, %d processes\n"
        machine.Machine.Config.name procs;
      Printf.printf "backend        : %s (%.3f s wall clock)\n" o.backend
        o.wall_seconds;
      Printf.printf "operations     : %d in %d cycles -> %.2f Mops/s%s\n" o.ops
        o.virtual_time o.mops
        (if o.oom then "  [ARENA EXHAUSTED]" else "");
      Printf.printf "memory         : %s allocated, %s peak live\n"
        (Workload.Report.fmt_bytes o.bytes_claimed)
        (Workload.Report.fmt_bytes o.bytes_peak);
      Printf.printf "reclamation    : %d allocs, %d frees, %d in limbo\n"
        o.allocs o.frees o.limbo;
      Printf.printf "signals        : %d sent, %d neutralizations\n"
        o.signals_sent o.neutralized;
      (match o.chaos with
      | None -> ()
      | Some s ->
          Printf.printf
            "chaos          : %d crash(es) (%d inside a handler), %d \
             signal(s) dropped, %d delayed (%d landed late); %d process(es) \
             dead at end\n"
            s.Chaos.crashes s.Chaos.handler_crashes s.Chaos.signals_dropped
            s.Chaos.signals_delayed s.Chaos.signals_delivered_late o.crashed;
          Printf.printf "post-fault     : structure invariants %s\n"
            (match o.invariant_failure with
            | None -> "hold"
            | Some msg -> "BROKEN: " ^ msg);
          Printf.printf
            "replay         : same faults fire again with --chaos %s --seed \
             %d\n"
            chaos seed);
      (match o.violations with
      | Some v ->
          Printf.printf "sanitizer      : %d violation(s)%s\n" v
            (if v = 0 then "" else "  [SEE STDERR]")
      | None -> ());
      (match o.cache with
      | Some c ->
          Printf.printf
            "cache model    : %d L1 hits, %d LLC hits, %d memory, %d \
             invalidations\n"
            c.Machine.Cache.l1_hits c.Machine.Cache.llc_hits
            c.Machine.Cache.mem_accesses c.Machine.Cache.invalidations
      | None -> ());
      List.iter
        (fun (kind, ps) ->
          Printf.printf "latency %-7s:%s (simulated ns)\n" kind
            (String.concat ""
               (List.map
                  (fun (p, v) -> Printf.sprintf "  p%g=%d" p v)
                  ps)))
        o.latency;
      (match history with
      | None -> ()
      | Some rec_ ->
          let h = Lincheck.History.snapshot rec_ in
          (match history_out with
          | None -> ()
          | Some file ->
              Lincheck.History.save h file;
              Printf.printf "history        : %d events written to %s\n"
                (Lincheck.History.ops h) file);
          if check_lin then (
            match
              Lincheck.Checker.check ~max_nodes:5_000_000 Lincheck.Spec.set h
            with
            | v ->
                Printf.printf "linearizability: %s\n"
                  (Lincheck.Checker.verdict_to_string v);
                (match v with
                | Lincheck.Checker.Non_linearizable _ -> exit 1
                | Lincheck.Checker.Linearizable -> ())
            | exception Lincheck.Checker.Gave_up n ->
                Printf.printf
                  "linearizability: gave up after %d search nodes — the                    history (%d events) is too large for the WGL check;                    shrink --duration/--procs/--range\n"
                  n (Lincheck.History.ops h)));
      (match telemetry with
      | None -> ()
      | Some rec_ -> (
          (match metrics_out with
          | None -> ()
          | Some file ->
              Telemetry.Recorder.write_metrics rec_ file;
              Printf.printf "metrics        : written to %s\n" file);
          match (trace, Telemetry.Recorder.trace rec_) with
          | Some file, Some tr ->
              Telemetry.Trace.write_file tr file;
              Printf.printf "chrome trace   : %d events written to %s%s\n"
                (Telemetry.Trace.events tr)
                file
                (let d = Telemetry.Trace.dropped tr in
                 if d > 0 then Printf.sprintf " (%d dropped)" d else "")
          | _ -> ()))

let term =
  let ds =
    Arg.(value & opt string "bst" & info [ "ds" ] ~doc:"bst | skiplist | list")
  in
  let scheme =
    Arg.(
      value & opt string "debra"
      & info [ "scheme" ]
          ~doc:
            "none | ebr | qsbr | debra | debra+ | hp | rc | stacktrack | \
             threadscan | vbr | hyaline (availability depends on --ds and \
             --variant; errors list the known combinations)")
  in
  let variant =
    Arg.(
      value & opt string "exp2"
      & info [ "variant" ]
          ~doc:
            "exp1 (no reuse) | exp2 (pool) | exp3 (malloc) | zoo (every \
             implemented scheme, bst only)")
  in
  let backend =
    Arg.(
      value & opt string "sim"
      & info [ "backend" ]
          ~doc:
            "sim (deterministic virtual-time simulator, the default) | \
             domains (real OCaml 5 domains on the wall clock)")
  in
  let procs = Arg.(value & opt int 8 & info [ "procs"; "p" ] ~doc:"processes") in
  let range = Arg.(value & opt int 10_000 & info [ "range" ] ~doc:"key range") in
  let ins = Arg.(value & opt int 50 & info [ "ins" ] ~doc:"insert %") in
  let del = Arg.(value & opt int 50 & info [ "del" ] ~doc:"delete %") in
  let duration =
    Arg.(value & opt int 2_000_000 & info [ "duration" ] ~doc:"virtual cycles")
  in
  let machine = Arg.(value & opt string "i7" & info [ "machine" ] ~doc:"i7 | t4") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"workload seed") in
  let sanitize =
    Arg.(
      value & flag
      & info [ "sanitize" ]
          ~doc:"run under the shadow-state SMR sanitizer (slower)")
  in
  let chaos =
    Arg.(
      value & opt string ""
      & info [ "chaos" ] ~docv:"KINDS"
          ~doc:
            "inject faults: comma-separated list of crash, handler, \
             neutralizer, drop, delay, oom:<headroom>.  The plan derives \
             deterministically from --seed; the trial runs under the \
             sanitizer and validates structure invariants afterwards")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "write a Chrome trace-event (catapult JSON) file: op spans, \
             epoch advances, neutralization signals, sweeps")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "write telemetry metrics JSON: latency histograms, limbo/epoch \
             lag/pool time series, event counters")
  in
  let explore =
    Arg.(
      value & opt int (-1)
      & info [ "explore" ] ~docv:"BUDGET"
          ~doc:
            "instead of a timed trial, systematically explore schedules of              a small fixed workload for this --ds/--scheme cell with at              most $(docv) preemptions per schedule, checking every              explored history for linearizability (also accepts --ds              queue); exits 1 with a replayable preemption schedule on a              violation")
  in
  let check_lin =
    Arg.(
      value & flag
      & info [ "check-linearizability" ]
          ~doc:
            "record the trial's operation history and check it against              the sequential set specification (WGL); feasible for small              trials only — shrink --duration/--procs/--range")
  in
  let history_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "history-out" ] ~docv:"FILE"
          ~doc:
            "record the trial's operation history and write it as JSON              to $(docv) (the format of test/histories/)")
  in
  Term.(
    const run $ ds $ scheme $ variant $ backend $ procs $ range $ ins $ del
    $ duration $ machine $ seed $ sanitize $ chaos $ trace $ metrics_out
    $ explore $ check_lin $ history_out)

let () =
  exit
    (Cmd.eval
       (Cmd.v
          (Cmd.info "debra_demo"
             ~doc:"Run one simulated trial of a reclamation scheme")
          term))
