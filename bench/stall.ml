(** E-stall: the stalled-process campaign (paper §2/§5 motivation).

    One process — the highest pid — is parked mid-operation (non-quiescent)
    at 20% of the trial and never returns.  Epoch-based schemes without
    neutralization (EBR, DEBRA) can no longer advance their epoch, so every
    retired record accumulates in limbo for the rest of the trial: the limbo
    time series grows without bound.  DEBRA+ suspects the stalled process,
    neutralizes it with a signal and advances past it, so its limbo
    plateaus below the O(mn²) bound the paper proves (rendered here as
    n² blocks of capacity B on the single shared bag structure, times the
    m = 3 limbo bags per process).

    The telemetry recorder supplies the evidence: per-process limbo gauges
    sampled on virtual-time ticks, rendered as a time-series table and an
    ASCII figure, plus latency percentiles per scheme.  With [--metrics-out]
    the full sampled series goes to a JSON file; with [--trace] the DEBRA+
    run's Chrome trace (op spans, epoch advances, neutralization signals,
    sweeps) is written for chrome://tracing. *)

open Common

(* Set by bench/main.ml's --trace / --metrics-out flags. *)
let trace_file : string option ref = ref None
let metrics_file : string option ref = ref None

let nprocs = 8

(* The paper's bound is O(mn²) records: m limbo bags per process, and at
   most n² + O(n) blocks of capacity B trapped across them before a
   neutralization round must succeed.  The constant rendered here (m·n²·B)
   is deliberately generous; the point of the experiment is the shape —
   bounded plateau vs unbounded growth — not the constant. *)
let limbo_bound ~n ~block_capacity = 3 * n * n * block_capacity

let scheme_runners () =
  [ B2_ebr.runner "ebr"; B2_debra.runner "debra"; B2_debra_plus.runner "debra+" ]

let run ~scale =
  let duration = max (2 * scale.Experiments.duration) 2_400_000 in
  let scale = { scale with Experiments.duration } in
  let range = scale.Experiments.small_range in
  let n = nprocs in
  let stall_at = duration / 5 in
  (* Parked until the end of the trial: the victim never comes back. *)
  let stall_cycles = duration - stall_at in
  (* Small blocks and an aggressive epoch cadence: at bench time scales the
     default throttling (incr_thresh = 100) advances the epoch only a
     handful of times per trial, which would hide the stall's effect behind
     ordinary steady-state backlog.  The paper's long trials amortize the
     same cadence; here we shorten the grace period instead. *)
  let block_capacity = 64 in
  let params =
    {
      Reclaim.Intf.Params.default with
      Reclaim.Intf.Params.block_capacity;
      incr_thresh = n;
    }
  in
  let bound = limbo_bound ~n ~block_capacity in
  let sample_every = max 10_000 (duration / 100) in
  let clock = Exec.Backend.clock !Experiments.backend in
  let cycles_per_ns = Exec.Clock.cycles_per_ns clock in
  let cycles_per_us = Exec.Clock.cycles_per_us clock in
  Printf.printf
    "\n\
     ===== E-stall: stalled-process campaign =====\n\
     BST keys [0,%d), 50i-50d, %d processes; process %d parks mid-operation \
     at t=%d and never returns.\n\
     Limbo bound (m*n^2*B = 3*%d^2*%d): %d records.\n"
    range n (n - 1) stall_at n block_capacity bound;
  let results =
    List.map
      (fun r ->
        let trace =
          (* One Chrome trace is enough; DEBRA+ is the interesting run
             (neutralization signals + epoch advances past the victim). *)
          if r.rname = "debra+" && !trace_file <> None then
            Some (Telemetry.Trace.create ~cycles_per_us ())
          else None
        in
        let rec_ =
          Telemetry.Recorder.create ~sample_every ?trace ~cycles_per_ns
            ~nprocs:n ()
        in
        let cfg =
          {
            (Experiments.base_cfg ~params ~scale ~range ~ins:50 ~del:50 n) with
            Workload.Schemes.telemetry = Some rec_;
            stall = Some (stall_at, stall_cycles);
            duration;
          }
        in
        let o = r.run cfg in
        Experiments.record_outcome o;
        (r.rname, rec_, o))
      (scheme_runners ())
  in
  (* Limbo time series, one row per sample epoch (thinned to ~12 rows). *)
  let series =
    List.map
      (fun (name, rec_, _) ->
        (name, Telemetry.Recorder.series_total rec_ "limbo"))
      results
  in
  let times = match series with (_, s) :: _ -> List.map fst s | [] -> [] in
  let nsamples = List.length times in
  let step = max 1 (nsamples / 12) in
  let rows =
    List.filteri (fun i _ -> i mod step = 0 || i = nsamples - 1) times
    |> List.map (fun t ->
           string_of_int t
           :: List.map
                (fun (_, s) ->
                  match List.assoc_opt t s with
                  | Some v -> string_of_int v
                  | None -> "-")
                series)
  in
  Workload.Report.table
    ~title:
      (Printf.sprintf
         "E-stall: limbo population over virtual time (stall at t=%d)"
         stall_at)
    ~header:("t (cycles)" :: List.map fst series)
    ~rows;
  Workload.Report.chart ~xlabel:"(virtual time, cycles)"
    ~title:"E-stall: records in limbo over time — figure"
    ~series:
      (List.map
         (fun (name, s) ->
           (name, List.map (fun (t, v) -> (t, float_of_int v)) s))
         series)
    ();
  (* Peak-vs-bound verdict per scheme. *)
  let peak s = List.fold_left (fun acc (_, v) -> max acc v) 0 s in
  let final s = match List.rev s with (_, v) :: _ -> v | [] -> 0 in
  List.iter
    (fun (name, s) ->
      Printf.printf "%-8s peak limbo %7d, final %7d  %s (bound %d)\n" name
        (peak s) (final s)
        (if peak s <= bound then "<= bound" else "EXCEEDS bound")
        bound)
    series;
  (* Latency percentiles: the stall barely moves the epoch schemes' op
     latency — the damage is memory, not speed. *)
  let header =
    "scheme"
    :: List.concat_map
         (fun k -> [ k ^ " p50"; k ^ " p99"; k ^ " p999" ])
         [ "insert"; "delete"; "search" ]
  in
  let rows =
    List.map
      (fun (name, _, o) ->
        name
        :: List.concat_map
             (fun kind ->
               match List.assoc_opt kind o.Workload.Trial.latency with
               | None -> [ "-"; "-"; "-" ]
               | Some ps ->
                   List.filter_map
                     (fun (p, v) ->
                       if List.mem p [ 50.0; 99.0; 99.9 ] then
                         Some (string_of_int v)
                       else None)
                     ps)
             [ "insert"; "delete"; "search" ])
      results
  in
  Workload.Report.table
    ~title:"E-stall: operation latency percentiles (simulated ns)" ~header
    ~rows;
  (* File outputs. *)
  (match !metrics_file with
  | None -> ()
  | Some file ->
      let doc =
        Telemetry.Json.Obj
          [
            ("experiment", Telemetry.Json.String "e-stall");
            ("nprocs", Telemetry.Json.Int n);
            ("stall_at", Telemetry.Json.Int stall_at);
            ("limbo_bound", Telemetry.Json.Int bound);
            ( "schemes",
              Telemetry.Json.Obj
                (List.map
                   (fun (name, rec_, _) ->
                     (name, Telemetry.Recorder.metrics_json rec_))
                   results) );
          ]
      in
      let oc = open_out file in
      output_string oc (Telemetry.Json.to_string doc);
      output_char oc '\n';
      close_out oc;
      Printf.printf "metrics written to %s\n" file);
  match !trace_file with
  | None -> ()
  | Some file ->
      List.iter
        (fun (name, rec_, _) ->
          match Telemetry.Recorder.trace rec_ with
          | Some tr when name = "debra+" ->
              Telemetry.Trace.write_file tr file;
              Printf.printf "chrome trace (debra+) written to %s\n" file
          | _ -> ())
        results
