(** The E-kv campaign: the sharded KV/session store (lib/kv) under
    open-loop load (lib/loadgen), with tail-latency SLO verdicts.

    Every other experiment in this harness is closed-loop: each process
    issues its next operation the moment the previous one returns, so a
    scheme that stalls simply does less work and the damage shows up only
    as throughput.  A session store is the workload where that hides
    exactly what matters: requests arrive when clients send them, and a
    reclamation stall (a neutralization storm, an HP scan, a limbo flush)
    makes {e queued} requests late — the coordinated-omission effect.
    Here arrivals are scheduled in absolute time ({!Loadgen.Arrivals}),
    latency is measured from the scheduled arrival, and each scheme's
    p50/p99/p999 per operation kind and per shard is judged against an
    SLO budget ({!Telemetry.Slo}).

    The store rides on any SET-face structure; keys mix the codec's two
    paths (even ranks are short injective keys, odd ranks are long hashed
    session keys), and run-time puts of session keys carry a TTL of a
    quarter of the schedule span, so lazy expiry drives retire traffic
    through the unlink-witness path mid-run.

    [--explore-free] (sim only) runs every cell twice and fails loudly if
    the two JSON rows differ by a byte: the whole campaign — arrivals,
    keys, interleaving, histograms — must replay exactly from the seed. *)

open Common

(* Set by bench/main.ml's kv flags. *)
let shards = ref 4
let structure = ref "skiplist"
let dist_name = ref "zipfian"
let arrival_name = ref "burst"
let arrival_rate = ref 400_000.0
let requests = ref 0 (* 0 = pick from scale *)
let nkeys = ref 4_096
let mix_name = ref "session"
let slo_spec = ref "p99=25000,p999=120000"
let nprocs = ref 4
let explore_free = ref false
let scheme_filter = ref "" (* comma list; empty = all *)

type cfg = {
  backend : Exec.Backend.t;
  nprocs : int;
  shards : int;
  structure : string;
  requests : int;
  nkeys : int;
  dist : Loadgen.Dist.t;
  arrivals : Loadgen.Arrivals.t;
  mix : Loadgen.mix;
  slo : Telemetry.Slo.budget;
  seed : int;
}

(* Even ranks take the codec's short injective path (<= 7 bytes), odd
   ranks the long hashed-session path with read-time verification. *)
let key_of_rank r =
  if r land 1 = 0 then Printf.sprintf "k%06d" r
  else Printf.sprintf "session:%08d" r

let value_of_rank r = Printf.sprintf "v%024d" r

type row = {
  scheme : string;
  throughput_mops : float;
  served : int;
  verdicts : Telemetry.Slo.verdict list;
  json : Telemetry.Json.t;
}

module Make_runner (RM : Reclaim.Intf.RECORD_MANAGER) = struct
  module Store = Kv.Store.Make (RM)

  let run ~sname (c : cfg) : row =
    let module E = (val Exec.Backend.runner c.backend) in
    let clock = E.clock in
    let group = Runtime.Group.create ~seed:c.seed c.nprocs in
    (* Worst-case routing skew puts every key on one shard; capacity is
       per shard, so size each for the whole run. *)
    let store =
      Store.create ~structure:c.structure ~shards:c.shards
        ~capacity_per_shard:(c.nkeys + c.requests) ~group ()
    in
    let plan =
      Loadgen.generate ~n:c.requests ~nkeys:c.nkeys ~dist:c.dist ~mix:c.mix
        ~arrivals:c.arrivals ~clock ~seed:c.seed
    in
    (* Session keys put during the run expire a quarter of the schedule
       span later, so hot keys are re-read past their deadline and the
       lazy-expiry retire path runs throughout. *)
    let ttl_cycles = max 1 (plan.Loadgen.arrivals.(c.requests - 1) / 4) in
    let ttl_for r = if r land 1 = 1 then Some ttl_cycles else None in
    (* Prefill (uninstrumented: backend hooks are not installed yet), no
       TTLs — prefill cannot date deadlines in the backend's time base. *)
    let ctx0 = Runtime.Group.ctx group 0 in
    for r = 0 to c.nkeys - 1 do
      Store.put store ctx0 ~key:(key_of_rank r) ~value:(value_of_rank r)
    done;
    let rec_ =
      Telemetry.Recorder.create
        ~cycles_per_ns:(Exec.Clock.cycles_per_ns clock)
        ~nprocs:c.nprocs ()
    in
    (* Reclamation-pressure counters (bounded-patience alloc retries and
       emergency-reclaim escalations) ride the recorder alongside the
       event-bus counters. *)
    Telemetry.Recorder.add_counter rec_ ~name:"kv_alloc_retries" (fun () ->
        (Store.pressure store).Reclaim.Intf.Pressure.alloc_retries);
    Telemetry.Recorder.add_counter rec_ ~name:"kv_emergency_reclaims"
      (fun () ->
        (Store.pressure store).Reclaim.Intf.Pressure.emergency_reclaims);
    Telemetry.Recorder.add_counter rec_ ~name:"kv_emergency_freed" (fun () ->
        (Store.pressure store).Reclaim.Intf.Pressure.emergency_freed);
    let served = Array.make c.nprocs 0 in
    let noutcomes = List.length Loadgen.outcomes in
    let oidx : Loadgen.outcome -> int = function
      | Served -> 0
      | Shed -> 1
      | Rejected -> 2
      | Timed_out -> 3
      | Failed -> 4
    in
    let ocounts = Array.make_matrix c.nprocs noutcomes 0 in
    (* The plain E-kv campaign has no admission control: every request is
       served.  The overload campaign (e_overload.ml) reuses this runner
       shape with a resilience service deciding the outcome instead. *)
    let exec_op ctx ~due:_ op =
      let shard =
        match op with
        | Loadgen.Get r ->
            let k = key_of_rank r in
            ignore (Store.get store ctx k);
            Store.shard_of_key store k
        | Loadgen.Put r ->
            let k = key_of_rank r in
            Store.put ?ttl:(ttl_for r) store ctx ~key:k
              ~value:(value_of_rank r);
            Store.shard_of_key store k
        | Loadgen.Delete r ->
            let k = key_of_rank r in
            ignore (Store.delete store ctx k);
            Store.shard_of_key store k
        | Loadgen.Scan (start, len) ->
            for i = start to start + len - 1 do
              ignore (Store.get store ctx (key_of_rank (i mod c.nkeys)))
            done;
            Store.shard_of_key store (key_of_rank start)
      in
      (shard, Loadgen.Served)
    in
    (* Each served request lands in two histograms: its operation kind
       and its shard; unserved outcomes are tallied and charged against
       demand at judgement time (they sort as infinite latency).  The
       deterministic simulator records straight into the recorder;
       domains record into per-pid buffers merged after the run (same
       machinery as the trial pipeline). *)
    let locals =
      if E.deterministic then None else Some (Telemetry.Recorder.locals rec_)
    in
    let record =
      match locals with
      | None ->
          fun ~pid ~op ~shard ~outcome ~start ~finish ->
            ocounts.(pid).(oidx outcome) <- ocounts.(pid).(oidx outcome) + 1;
            if outcome = Loadgen.Served then begin
              served.(pid) <- served.(pid) + 1;
              Telemetry.Recorder.op rec_ ~pid ~kind:(Loadgen.op_kind op)
                ~start ~finish;
              Telemetry.Recorder.op rec_ ~pid
                ~kind:(Printf.sprintf "shard%d" shard)
                ~start ~finish
            end
      | Some ls ->
          fun ~pid ~op ~shard ~outcome ~start ~finish ->
            ocounts.(pid).(oidx outcome) <- ocounts.(pid).(oidx outcome) + 1;
            if outcome = Loadgen.Served then begin
              served.(pid) <- served.(pid) + 1;
              Telemetry.Recorder.local_op ls.(pid) ~kind:(Loadgen.op_kind op)
                ~start ~finish;
              Telemetry.Recorder.local_op ls.(pid)
                ~kind:(Printf.sprintf "shard%d" shard)
                ~start ~finish
            end
    in
    let bodies = Loadgen.bodies plan ~group ~record ~exec_op in
    let result = E.run group bodies in
    Option.iter (Telemetry.Recorder.merge_locals rec_) locals;
    let served = Array.fold_left ( + ) 0 served in
    Store.check_invariants store;
    Store.flush store ctx0;
    let scope = Printf.sprintf "%s/%s" sname c.structure in
    (* Demand per kind comes from the request plan, not from what the
       server happened to serve — a shard that rejects everything must
       not shrink its own denominator. *)
    let demand_tbl = Hashtbl.create 16 in
    let bump k =
      Hashtbl.replace demand_tbl k
        (1 + Option.value ~default:0 (Hashtbl.find_opt demand_tbl k))
    in
    Array.iter
      (fun op ->
        bump (Loadgen.op_kind op);
        let rank =
          match op with
          | Loadgen.Get r | Loadgen.Put r | Loadgen.Delete r -> r
          | Loadgen.Scan (start, _) -> start
        in
        bump
          (Printf.sprintf "shard%d"
             (Store.shard_of_key store (key_of_rank rank))))
      plan.Loadgen.ops;
    let demand_of kind =
      Option.value ~default:0 (Hashtbl.find_opt demand_tbl kind)
    in
    let judge kind =
      match Telemetry.Recorder.histogram rec_ kind with
      | None -> None
      | Some h ->
          Some
            (Telemetry.Slo.judge_demand c.slo ~scope ~kind
               ~demand:(demand_of kind) h)
    in
    let kinds =
      List.filter
        (fun (k, pct) -> ignore k; pct > 0)
        [
          ("get", c.mix.Loadgen.get);
          ("put", c.mix.Loadgen.put);
          ("delete", c.mix.Loadgen.delete);
          ("scan", c.mix.Loadgen.scan);
        ]
      |> List.map fst
    in
    let shard_kinds =
      List.init c.shards (fun i -> Printf.sprintf "shard%d" i)
    in
    let verdicts = List.filter_map judge (kinds @ shard_kinds) in
    let throughput_mops =
      Exec.Clock.mops clock ~ops:served
        ~cycles:result.Exec.Intf.elapsed_cycles
    in
    let json =
      Telemetry.Json.Obj
        ([
           ("experiment", Telemetry.Json.String "kv");
           ("scheme", Telemetry.Json.String sname);
           ("structure", Telemetry.Json.String c.structure);
           ("backend", Telemetry.Json.String E.name);
           ("shards", Telemetry.Json.Int c.shards);
           ("nprocs", Telemetry.Json.Int c.nprocs);
           ("requests", Telemetry.Json.Int c.requests);
           ("served", Telemetry.Json.Int served);
           ( "outcomes",
             Telemetry.Json.Obj
               (List.map
                  (fun o ->
                    ( Loadgen.outcome_name o,
                      Telemetry.Json.Int
                        (Array.fold_left
                           (fun acc per_pid -> acc + per_pid.(oidx o))
                           0 ocounts) ))
                  Loadgen.outcomes) );
           ("dist", Telemetry.Json.String (Loadgen.Dist.to_string c.dist));
           ( "arrivals",
             Telemetry.Json.String (Loadgen.Arrivals.to_string c.arrivals) );
           ("mix", Telemetry.Json.String (Loadgen.mix_to_string c.mix));
           ("elapsed_cycles", Telemetry.Json.Int result.Exec.Intf.elapsed_cycles);
           ("throughput_mops", Telemetry.Json.Float throughput_mops);
           ("bytes_claimed", Telemetry.Json.Int (Store.bytes_claimed store));
           ( "bytes_per_req",
             Telemetry.Json.Float
               (float_of_int (Store.bytes_claimed store)
               /. float_of_int (max 1 served)) );
           ("limbo_after_flush", Telemetry.Json.Int (Store.limbo store));
           ("live_entries", Telemetry.Json.Int (Store.size store));
           ( "slo_pass",
             Telemetry.Json.Bool (Telemetry.Slo.all_pass verdicts) );
           ( "verdicts",
             Telemetry.Json.List
               (List.map Telemetry.Slo.verdict_json verdicts) );
         ]
        @
        (* Wall-clock time is genuinely non-deterministic; keeping it out
           of sim rows keeps `--explore-free` (and the golden test) a
           byte-identity check. *)
        if E.deterministic then []
        else [ ("wall_seconds", Telemetry.Json.Float result.Exec.Intf.wall_seconds) ]
        )
    in
    { scheme = sname; throughput_mops; served; verdicts; json }
end

module Kv_none = Make_runner (RM1_none)
module Kv_ebr = Make_runner (RM2_ebr)
module Kv_debra = Make_runner (RM2_debra)
module Kv_debra_plus = Make_runner (RM2_debra_plus)
module Kv_hp = Make_runner (RM2_hp)
module Kv_vbr = Make_runner (RM2_vbr)
module Kv_hyaline = Make_runner (RM2_hyaline)

let schemes : (string * (sname:string -> cfg -> row)) list =
  [
    ("none", Kv_none.run);
    ("ebr", Kv_ebr.run);
    ("debra", Kv_debra.run);
    ("debra+", Kv_debra_plus.run);
    ("hp", Kv_hp.run);
    ("vbr", Kv_vbr.run);
    ("hyaline", Kv_hyaline.run);
  ]

let cfg_of_flags ~scale =
  let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt in
  let dist =
    match Loadgen.Dist.of_string !dist_name with
    | Some d -> d
    | None ->
        fail "kv: unknown distribution %S (expected %s)" !dist_name
          (String.concat "|" Loadgen.Dist.names)
  in
  let arrivals =
    match Loadgen.Arrivals.of_spec ~rate:!arrival_rate !arrival_name with
    | Some a -> a
    | None ->
        fail "kv: unknown arrival pattern %S (expected %s)" !arrival_name
          (String.concat "|" Loadgen.Arrivals.names)
  in
  let mix =
    match Loadgen.mix_of_string !mix_name with
    | Some m -> m
    | None ->
        fail "kv: unknown mix %S (expected %s)" !mix_name
          (String.concat "|" Loadgen.mix_names)
  in
  let slo =
    match Telemetry.Slo.budget_of_spec !slo_spec with
    | b -> b
    | exception Invalid_argument msg -> fail "kv: %s" msg
  in
  let requests =
    if !requests > 0 then !requests
    else if scale == Experiments.full_scale then 100_000
    else 20_000
  in
  {
    backend = !Experiments.backend;
    nprocs = !nprocs;
    shards = !shards;
    structure = !structure;
    requests;
    nkeys = !nkeys;
    dist;
    arrivals;
    mix;
    slo;
    seed = 7;
  }

let print_row (r : row) =
  Printf.printf "%-8s %8.3f Mreq/s  served %d\n" r.scheme r.throughput_mops
    r.served;
  List.iter
    (fun (v : Telemetry.Slo.verdict) ->
      Printf.printf "    %-10s n=%-7d p50=%-8d p99=%-8d p999=%-8d %s\n"
        v.Telemetry.Slo.kind v.Telemetry.Slo.count v.Telemetry.Slo.p50
        v.Telemetry.Slo.p99 v.Telemetry.Slo.p999
        (if v.Telemetry.Slo.pass then "SLO ok"
         else
           String.concat ", "
             (List.map
                (fun (b : Telemetry.Slo.breach) ->
                  Printf.sprintf "%s %dns > %dns budget"
                    b.Telemetry.Slo.percentile b.Telemetry.Slo.observed_ns
                    b.Telemetry.Slo.budget_ns)
                v.Telemetry.Slo.breaches)))
    r.verdicts;
  Printf.printf "%!"

let run ~scale =
  let cfg = cfg_of_flags ~scale in
  Printf.printf
    "E-kv: open-loop sharded KV/session store\n\
     backend %s | %d shards x %s | %d procs | %d requests over %d keys\n\
     %s arrivals | %s | mix %s | SLO %s\n\n\
     %!"
    (Exec.Backend.to_string cfg.backend)
    cfg.shards cfg.structure cfg.nprocs cfg.requests cfg.nkeys
    (Loadgen.Arrivals.to_string cfg.arrivals)
    (Loadgen.Dist.to_string cfg.dist)
    (Loadgen.mix_to_string cfg.mix)
    !slo_spec;
  let selected =
    if !scheme_filter = "" then schemes
    else
      let want = String.split_on_char ',' !scheme_filter in
      let missing =
        List.filter (fun w -> not (List.mem_assoc w schemes)) want
      in
      if missing <> [] then begin
        Printf.eprintf "kv: unknown scheme(s) %s (expected %s)\n"
          (String.concat "," missing)
          (String.concat "|" (List.map fst schemes));
        exit 2
      end;
      List.filter (fun (s, _) -> List.mem s want) schemes
  in
  List.iter
    (fun (sname, run) ->
      let r = run ~sname cfg in
      (if !explore_free then
         match cfg.backend with
         | `Domains ->
             Printf.eprintf
               "kv: --explore-free needs the deterministic sim backend; \
                skipping the replay check\n\
                %!"
         | `Sim ->
             let r2 = run ~sname cfg in
             let a = Telemetry.Json.to_string r.json
             and b = Telemetry.Json.to_string r2.json in
             if not (String.equal a b) then begin
               Printf.eprintf
                 "kv: %s replay diverged under --explore-free:\n%s\n%s\n" sname
                 a b;
               exit 1
             end);
      print_row r;
      Experiments.record_kv_row r.json)
    selected
