(** E-crash / E-oom: the fault-injection campaign (DESIGN.md §9,
    EXPERIMENTS.md).

    Sweeps schemes × structures × fault kinds, every trial under the
    shadow-state sanitizer with post-fault invariant validation, and
    checks the graceful-degradation contract of each scheme:

    - {e crash faults} (a process dies mid-operation, inside its signal
      handler, or right after neutralizing): survivors must finish the
      workload, the structure must pass its invariant walk, the sanitizer
      must stay silent — and the limbo consequences must match the paper's
      story: DEBRA+ neutralizes the dead process (ESRCH counts as
      permanently quiescent) and keeps limbo bounded by the E-stall bound,
      while EBR/QSBR/DEBRA can never advance past it and grow without
      bound;
    - {e signal faults} (dropped / delayed deliveries): DEBRA+'s
      retry-with-backoff path must still neutralize, keeping limbo
      bounded;
    - {e bounded memory} (E-oom): with allocation headroom above the
      prefilled live set capped at the limbo bound, schemes with a working
      emergency-reclamation path (DEBRA, DEBRA+, HP ...) must complete the
      trial — their pipeline inventory stays within the bound — while
      [none], which never frees, must exhaust the headroom and report it
      cleanly.

    Every trial's plan derives from one printed seed; a failing
    configuration prints the exact replay command. *)

open Common

(* Set by bench/main.ml's --chaos-seed flag: replay one seed instead of the
   default sweep. *)
let replay_seed : int option ref = ref None

(* CI gate: number of verdict failures; main.ml exits non-zero if any. *)
let failures = ref 0

let nprocs = 8
let default_seeds = [ 42 ]

let limbo_bound ~n ~block_capacity = 3 * n * n * block_capacity

type verdict = {
  v_structure : string;
  v_scheme : string;
  v_fault : string;
  v_seed : int;
  v_outcome : Workload.Trial.outcome option;  (* None = wedged (Sim.Stuck) *)
  v_errors : string list;  (* empty = pass *)
}

let check_verdict ~expect_oom ~expect_crash ~limbo_check ~bound
    (o : Workload.Trial.outcome) =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  (match o.Workload.Trial.violations with
  | Some v when v > 0 -> err "%d sanitizer violation(s)" v
  | _ -> ());
  (match o.Workload.Trial.invariant_failure with
  | Some msg -> err "structure invariant broken: %s" msg
  | None -> ());
  if expect_oom && not o.Workload.Trial.oom then
    err "expected exhaustion, but the trial completed";
  if (not expect_oom) && o.Workload.Trial.oom then
    err "allocation failed (emergency reclamation did not free enough)";
  if expect_crash && o.Workload.Trial.crashed = 0 then
    err "crash fault never fired";
  (match limbo_check with
  | `Bounded ->
      if o.Workload.Trial.limbo > bound then
        err "limbo %d exceeds bound %d (neutralization failed)"
          o.Workload.Trial.limbo bound
  | `Unbounded ->
      (* Whether growth crosses the full m*n^2*B bound within the trial
         depends on its length; what must hold is that the pinned scheme's
         limbo keeps growing well past any steady-state level.  A quarter
         of the bound is far above every scheme's fault-free steady state
         at this scale and far below where pinned growth lands. *)
      let floor = bound / 4 in
      if o.Workload.Trial.limbo <= floor then
        err "limbo %d below growth floor %d (crashed process did not pin \
             reclamation?)"
          o.Workload.Trial.limbo floor
  | `Ignore -> ());
  List.rev !errs

let verdict_json v =
  let open Telemetry.Json in
  Obj
    ([
       ("structure", String v.v_structure);
       ("scheme", String v.v_scheme);
       ("fault", String v.v_fault);
       ("seed", Int v.v_seed);
       ("pass", Bool (v.v_errors = []));
       ("errors", List (List.map (fun e -> String e) v.v_errors));
     ]
    @
    match v.v_outcome with
    | None -> [ ("wedged", Bool true) ]
    | Some o ->
        [
          ("ops", Int o.Workload.Trial.ops);
          ("crashed", Int o.Workload.Trial.crashed);
          ("limbo", Int o.Workload.Trial.limbo);
          ("oom", Bool o.Workload.Trial.oom);
          ( "chaos",
            match o.Workload.Trial.chaos with
            | None -> Null
            | Some s ->
                Obj
                  [
                    ("crashes", Int s.Chaos.crashes);
                    ("handler_crashes", Int s.Chaos.handler_crashes);
                    ("signals_dropped", Int s.Chaos.signals_dropped);
                    ("signals_delayed", Int s.Chaos.signals_delayed);
                    ( "signals_delivered_late",
                      Int s.Chaos.signals_delivered_late );
                  ] );
        ])

let fault_name = function
  | `Crash -> "crash"
  | `Crash_in_handler -> "crash-in-handler"
  | `Crash_neutralizer -> "crash-neutralizer"
  | `Drop -> "drop-signals"
  | `Delay -> "delay-signals"
  | `Oom _ -> "oom"

let run ~scale =
  let duration = max scale.Experiments.duration 1_200_000 in
  let n = nprocs in
  let range = scale.Experiments.small_range in
  let block_capacity = 64 in
  let params =
    {
      Reclaim.Intf.Params.default with
      Reclaim.Intf.Params.block_capacity;
      incr_thresh = n;
    }
  in
  let bound = limbo_bound ~n ~block_capacity in
  let seeds =
    match !replay_seed with Some s -> [ s ] | None -> default_seeds
  in
  Printf.printf
    "\n\
     ===== E-crash / E-oom: fault-injection campaign =====\n\
     %d processes, keys [1,%d], 50i-50d, %d cycles; sanitizer + post-fault \
     invariant checks on every trial.\n\
     Limbo bound (m*n^2*B): %d records.  Seeds: %s.\n"
    n range duration bound
    (String.concat ", " (List.map string_of_int seeds));
  let verdicts = ref [] in
  let trial ?(params = params) ~structure ~(runner : runner) ~fault ~seed
      ~expect_oom ~limbo_check ~budget () =
    let kind = [ fault ] in
    let plan = Chaos.random_plan ~seed ~nprocs:n kind in
    let expect_crash =
      match fault with
      | `Crash | `Crash_in_handler | `Crash_neutralizer -> true
      | _ -> false
    in
    let cfg =
      {
        (Experiments.base_cfg ~params
           ~scale:{ scale with Experiments.duration }
           ~range ~ins:50 ~del:50 n)
        with
        Workload.Schemes.sanitize = true;
        chaos = Some plan;
        budget;
        max_steps = Some 40_000_000;
        history = None;
        seed;
      }
    in
    let fname = fault_name fault in
    let v =
      match runner.run cfg with
      | o ->
          Experiments.record_outcome o;
          {
            v_structure = structure;
            v_scheme = runner.rname;
            v_fault = fname;
            v_seed = seed;
            v_outcome = Some o;
            v_errors =
              check_verdict ~expect_oom ~expect_crash ~limbo_check ~bound o;
          }
      | exception Sim.Stuck info ->
          {
            v_structure = structure;
            v_scheme = runner.rname;
            v_fault = fname;
            v_seed = seed;
            v_outcome = None;
            v_errors =
              [
                Printf.sprintf "wedged: %s (after %d steps)" info.Sim.s_reason
                  info.Sim.s_steps;
              ];
          }
    in
    verdicts := v :: !verdicts;
    if v.v_errors <> [] then begin
      incr failures;
      Printf.printf "FAIL %-8s %-10s %-16s seed %d\n" structure
        runner.rname fname seed;
      List.iter (fun e -> Printf.printf "       %s\n" e) v.v_errors;
      Printf.printf "       plan: %s\n" (Chaos.plan_to_string plan);
      Printf.printf "       replay: debra-bench e-chaos --chaos-seed %d\n" seed
    end;
    v
  in
  (* --- E-crash: one process dies mid-operation. ------------------- *)
  List.iter
    (fun seed ->
      (* Epoch schemes without neutralization: the dead non-quiescent
         process pins the epoch/qpoint forever; limbo must blow through
         the bound.  DEBRA+ gets ESRCH, counts the corpse as permanently
         quiescent, and stays bounded. *)
      List.iter
        (fun (runner, limbo_check) ->
          ignore
            (trial ~structure:"bst" ~runner ~fault:`Crash ~seed
               ~expect_oom:false ~limbo_check ~budget:(-1) ()))
        [
          (B2_ebr.runner "ebr", `Unbounded);
          (B2_qsbr.runner "qsbr", `Unbounded);
          (B2_debra.runner "debra", `Unbounded);
          (B2_debra_plus.runner "debra+", `Bounded);
          (* Per-record schemes: a crash leaks at most k records; limbo
             stays bounded by their ordinary thresholds. *)
          (B2_hp.runner "hp", `Bounded);
          (B2_rc.runner "rc", `Bounded);
          (* Next-generation reclaimers: VBR frees full blocks eagerly on
             retire (a corpse pins nothing — versions, not grace periods,
             protect readers), and Hyaline discounts crashed processes
             when sealing batches, so both stay within the bound. *)
          (B2_vbr.runner "vbr", `Bounded);
          (B2_hyaline.runner "hyaline", `Bounded);
        ];
      (* Same story on the list structure, for the schemes where the
         contrast matters. *)
      List.iter
        (fun (runner, limbo_check) ->
          ignore
            (trial ~structure:"list" ~runner ~fault:`Crash ~seed
               ~expect_oom:false ~limbo_check ~budget:(-1) ()))
        (match List.assoc_opt ("list", "exp2") Workload.Schemes.by_name with
        | None -> []
        | Some rs ->
            List.filter_map
              (fun (r : runner) ->
                match r.rname with
                (* The list's op rate at this scale retires too few records
                   to judge limbo shape; these trials check crash-safety
                   (invariants, sanitizer, survivors finishing) on a second
                   structure.  DEBRA+'s bound is still asserted. *)
                | "debra" -> Some (r, `Ignore)
                | "debra+" -> Some (r, `Bounded)
                | _ -> None)
              rs);
      (* DEBRA+-specific fault kinds: die inside the signal handler, die
         right after neutralizing, and unreliable signal delivery. *)
      List.iter
        (fun fault ->
          ignore
            (trial ~structure:"bst"
               ~runner:(B2_debra_plus.runner "debra+")
               ~fault ~seed ~expect_oom:false ~limbo_check:`Bounded
               ~budget:(-1) ()))
        [ `Crash_in_handler; `Crash_neutralizer; `Drop; `Delay ])
    seeds;
  (* --- E-oom: bounded memory. ------------------------------------- *)
  (* Tight headroom above the prefill's claims: n^2 * B records, a third
     of the limbo bound.  Local pool bags are kept small
     ([pool_cap_blocks = 2]) so free records spill to the shared bag
     instead of being hoarded per-process — the configuration a
     memory-constrained deployment would run.  A reclaiming scheme's
     inventory (young limbo + pool stock) is recyclable: when the cap
     binds, emergency reclamation drains limbo back into the pools and
     the trial completes.  [none] allocates fresh records for every
     operation and must exhaust the headroom within a few thousand
     operations. *)
  let oom_headroom = n * n * block_capacity in
  let oom_params = { params with Reclaim.Intf.Params.pool_cap_blocks = 2 } in
  List.iter
    (fun seed ->
      List.iter
        (fun ((runner : runner), expect_oom) ->
          ignore
            (trial ~params:oom_params ~structure:"bst" ~runner
               ~fault:(`Oom oom_headroom) ~seed ~expect_oom
               ~limbo_check:`Ignore ~budget:(-1) ()))
        [
          (B1_none.runner "none", true);
          (B2_debra.runner "debra", false);
          (B2_debra_plus.runner "debra+", false);
          (B2_hp.runner "hp", false);
          (* VBR's retire frees blocks immediately and Hyaline's batches
             drain at session boundaries: both keep inventory recyclable
             and must complete within the same headroom. *)
          (B2_vbr.runner "vbr", false);
          (B2_hyaline.runner "hyaline", false);
        ])
    seeds;
  let verdicts = List.rev !verdicts in
  (* Summary table. *)
  let rows =
    List.map
      (fun v ->
        [
          v.v_structure;
          v.v_scheme;
          v.v_fault;
          string_of_int v.v_seed;
          (match v.v_outcome with
          | None -> "WEDGED"
          | Some o ->
              if o.Workload.Trial.oom then "oom"
              else Printf.sprintf "%d ops" o.Workload.Trial.ops);
          (match v.v_outcome with
          | None -> "-"
          | Some o -> string_of_int o.Workload.Trial.crashed);
          (match v.v_outcome with
          | None -> "-"
          | Some o -> string_of_int o.Workload.Trial.limbo);
          (if v.v_errors = [] then "pass"
           else String.concat "; " v.v_errors);
        ])
      verdicts
  in
  Workload.Report.table ~title:"E-crash / E-oom: fault campaign verdicts"
    ~header:
      [ "structure"; "scheme"; "fault"; "seed"; "result"; "crashed";
        "limbo"; "verdict" ]
    ~rows;
  let npass = List.length (List.filter (fun v -> v.v_errors = []) verdicts) in
  Printf.printf "%d/%d chaos configurations passed.\n" npass
    (List.length verdicts);
  (* JSON report (the CI artifact). *)
  let doc =
    Telemetry.Json.Obj
      [
        ("experiment", Telemetry.Json.String "e-chaos");
        ("nprocs", Telemetry.Json.Int n);
        ("limbo_bound", Telemetry.Json.Int bound);
        ( "seeds",
          Telemetry.Json.List (List.map (fun s -> Telemetry.Json.Int s) seeds)
        );
        ("verdicts", Telemetry.Json.List (List.map verdict_json verdicts));
      ]
  in
  let oc = open_out "CHAOS_REPORT.json" in
  output_string oc (Telemetry.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "chaos report written to CHAOS_REPORT.json\n%!"
