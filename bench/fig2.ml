(** Figure 2 of the paper: the summary table of reclamation schemes.  The
    rows are properties; the data is static metadata carried alongside each
    scheme implementation (or, for schemes the paper only surveys, taken
    from its table). *)

type scheme_row = {
  id : string;
  per_record : bool;  (* code modifications per accessed record *)
  per_op : bool;  (* per operation *)
  per_retire : bool;  (* per retired record *)
  other_mods : string;
  timing_assumptions : string;  (* "", "progress", "correctness" *)
  fault_tolerant : bool;
  termination : string;
  retired_to_retired : bool;
  implemented : bool;  (* implemented in this repository *)
}

let schemes =
  [
    {
      id = "RC";
      per_record = true;
      per_op = false;
      per_retire = true;
      other_mods = "break pointer cycles";
      timing_assumptions = "";
      fault_tolerant = true;
      termination = "lock-free";
      retired_to_retired = true;
      implemented = true;
    };
    {
      id = "HP";
      per_record = true;
      per_op = false;
      per_retire = true;
      other_mods = "recovery when protect fails";
      timing_assumptions = "";
      fault_tolerant = true;
      termination = "wait-free";
      retired_to_retired = false;
      implemented = true;
    };
    {
      id = "B&C";
      per_record = true;
      per_op = false;
      per_retire = true;
      other_mods = "recovery code (a)+(b)";
      timing_assumptions = "";
      fault_tolerant = true;
      termination = "lock-free";
      retired_to_retired = true;
      implemented = false;
    };
    {
      id = "TS";
      per_record = false;
      per_op = false;
      per_retire = true;
      other_mods = "";
      timing_assumptions = "progress";
      fault_tolerant = false;
      termination = "blocking";
      retired_to_retired = false;
      implemented = true;
    };
    {
      id = "ST";
      per_record = true;
      per_op = true;
      per_retire = true;
      other_mods = "transaction checkpoints every few lines";
      timing_assumptions = "";
      fault_tolerant = true;
      termination = "lock-free";
      retired_to_retired = false;
      implemented = true;
    };
    {
      id = "EBR";
      per_record = false;
      per_op = true;
      per_retire = true;
      other_mods = "";
      timing_assumptions = "";
      fault_tolerant = false;
      termination = "lock-free";
      retired_to_retired = true;
      implemented = true;
    };
    {
      id = "QSBR";
      per_record = false;
      per_op = false;
      per_retire = true;
      other_mods = "identify quiescent points manually";
      timing_assumptions = "";
      fault_tolerant = false;
      termination = "lock-free";
      retired_to_retired = true;
      implemented = true;
    };
    {
      id = "DTA";
      per_record = true;
      per_op = false;
      per_retire = true;
      other_mods = "integrate with list synchronization (lists only)";
      timing_assumptions = "";
      fault_tolerant = true;
      termination = "lock-free";
      retired_to_retired = false;
      implemented = false;
    };
    {
      id = "QS";
      per_record = true;
      per_op = true;
      per_retire = true;
      other_mods = "rooster processes";
      timing_assumptions = "correctness";
      fault_tolerant = false;
      termination = "lock-free (rooster)";
      retired_to_retired = false;
      implemented = false;
    };
    {
      id = "OA";
      per_record = true;
      per_op = true;
      per_retire = true;
      other_mods = "normalized form; instrument every read/write/CAS";
      timing_assumptions = "";
      fault_tolerant = true;
      termination = "lock-free";
      retired_to_retired = true;
      implemented = false;
    };
    {
      id = "DEBRA";
      per_record = false;
      per_op = true;
      per_retire = true;
      other_mods = "";
      timing_assumptions = "";
      fault_tolerant = false;
      termination = "wait-free";
      retired_to_retired = true;
      implemented = true;
    };
    {
      id = "DEBRA+";
      per_record = false;
      per_op = true;
      per_retire = true;
      other_mods = "crash recovery code (trivial for many structures)";
      timing_assumptions = "";
      fault_tolerant = true;
      termination = "wait-free (signals)";
      retired_to_retired = true;
      implemented = true;
    };
    (* Post-paper schemes implemented behind the same Record Manager
       face, for contrast with the 2015 survey rows above. *)
    {
      id = "VBR";
      per_record = true;
      per_op = false;
      per_retire = true;
      other_mods = "version re-validation on every deref; type-stable arena";
      timing_assumptions = "";
      fault_tolerant = true;
      termination = "lock-free";
      retired_to_retired = false;
      implemented = true;
    };
    {
      id = "Hyaline";
      per_record = false;
      per_op = true;
      per_retire = true;
      other_mods = "";
      timing_assumptions = "";
      fault_tolerant = true;
      termination = "lock-free";
      retired_to_retired = true;
      implemented = true;
    };
  ]

let yn b = if b then "yes" else ""

let print () =
  let header =
    [
      "scheme";
      "per-record";
      "per-op";
      "per-retire";
      "other changes";
      "timing";
      "fault-tol";
      "termination";
      "retired->retired";
      "in repo";
    ]
  in
  let rows =
    List.map
      (fun s ->
        [
          s.id;
          yn s.per_record;
          yn s.per_op;
          yn s.per_retire;
          s.other_mods;
          s.timing_assumptions;
          yn s.fault_tolerant;
          s.termination;
          yn s.retired_to_retired;
          yn s.implemented;
        ])
      schemes
  in
  Workload.Report.table
    ~title:"Figure 2: summary of memory reclamation schemes" ~header ~rows
