(** E-overload: the chaos-under-load campaign (DESIGN.md §14,
    EXPERIMENTS.md).

    Every cell runs the sharded KV store behind the full resilience layer
    (lib/resilience: deadlines, retry budgets, per-shard circuit breakers,
    limbo-watermark escalation and shedding) while three pressures land
    at once:

    - {e burst arrivals}: a [Spike] arrival process — one overload window
      whose bounds define the degradation report's pre / burst / post
      phases;
    - {e crashed shard}: a chaos [In_operation] crash kills one worker
      mid-operation, leaving a corpse whose announcement pins its shard's
      reclamation.  Schemes with crash recovery (DEBRA+ neutralization,
      per-record schemes) ride it out; plain epoch schemes wedge the
      shard, the breaker force-opens on the [shard_wedged] probe, and the
      shard rejects forever;
    - {e stalled process}: a straggler parks mid-operation on another
      shard for part of the burst (the E-stall adversary scoped to one
      shard), inflating limbo exactly when the spike needs capacity.

    The cell's verdict is the degradation report's three machine checks
    (limbo bound held, worst-phase goodput floor, time-to-recover), and
    the campaign's gate is the paper's claim in SLO form: every DEBRA+
    cell must pass, while the epoch schemes without neutralization
    (EBR / QSBR / DEBRA) must demonstrably degrade — a wedged shard never
    recovers.  Per-record and other schemes are observed but not gated.
    On the simulator one cell is run twice and its JSON rows must be
    byte-identical (the whole campaign replays from the seed). *)

open Common

(* Set by bench/main.ml: --chaos-seed replays one seed; --overload-requests
   and --overload-schemes shrink the sweep (the CI smoke job). *)
let replay_seed : int option ref = ref None
let requests = ref 0
let scheme_filter = ref ""

(* CI gate: expectation violations + determinism failures. *)
let failures = ref 0

let n_workers = 3
let nprocs = n_workers + 1 (* last pid is the straggler *)
let shards = 2
let nkeys = 2_048
let block_capacity = 64
let limbo_bound = 3 * nprocs * nprocs * block_capacity
(* Base rate sits below every structure's fault-free capacity (bst, the
   slowest, serves ~190 k/s on this clock); the spike exceeds it several
   times over. *)
let base_rate = 150_000.0
let spike_mult = 8.0
let spike_start_s = 0.010
let spike_len_s = 0.0025
let floor_pct = 50.0

type expectation = Must_pass | Must_degrade | Observe

let expectation_name = function
  | Must_pass -> "must-pass"
  | Must_degrade -> "must-degrade"
  | Observe -> "observe"

type cell = {
  c_scheme : string;
  c_structure : string;
  c_seed : int;
  c_expect : expectation;
  c_report : (Resilience.Degradation.verdict * string) option;
      (* verdict + the degradation section rendered to JSON text; None =
         the cell wedged (Sim.Stuck) *)
  c_json : Telemetry.Json.t;
  c_errors : string list;
}

let key_of_rank r =
  if r land 1 = 0 then Printf.sprintf "k%06d" r
  else Printf.sprintf "session:%08d" r

let value_of_rank r = Printf.sprintf "v%024d" r

module Make_cell (RM : Reclaim.Intf.RECORD_MANAGER) = struct
  module Store = Kv.Store.Make (RM)

  let run ~sname ~structure ~backend ~requests ~seed () :
      Telemetry.Json.t * (Resilience.Degradation.verdict * string) option =
    let module E = (val Exec.Backend.runner backend) in
    let clock = E.clock in
    let group = Runtime.Group.create ~seed nprocs in
    (* Same hazard-slot sizing rule as the store's own defaults (worst-
       case protection footprint plus the chained payload guard) — only
       block_capacity and incr_thresh deviate, to pin the limbo bound. *)
    let hp_slots =
      match structure with
      | "skiplist" -> (2 * Ds.Skiplist.max_level) + 10
      | _ -> max Reclaim.Intf.Params.default.hp_slots 10
    in
    let params =
      {
        Reclaim.Intf.Params.default with
        block_capacity;
        incr_thresh = nprocs;
        hp_slots;
      }
    in
    let store =
      Store.create ~structure ~params ~shards
        ~capacity_per_shard:(nkeys + requests) ~group ()
    in
    let arrivals =
      Loadgen.Arrivals.Spike
        {
          base = base_rate;
          peak = spike_mult *. base_rate;
          start_s = spike_start_s;
          len_s = spike_len_s;
        }
    in
    let burst_start, burst_end =
      match Loadgen.Arrivals.spike_window arrivals ~clock with
      | Some w -> w
      | None -> assert false
    in
    (* Recovery-rate bucket: ~37 requests/bucket at the base rate, enough
       for the 2%-bad tolerance to separate a wedged shard's steady
       rejections from stray organic deadline misses. *)
    let bucket_cycles = Exec.Clock.cycles_of_us clock 250 in
    let mix =
      (* Scans are the sheddable low-priority class; the campaign needs
         them in the mix for brownout to have anything to drop. *)
      match Loadgen.mix_of_string "scan_heavy" with
      | Some m -> m
      | None -> assert false
    in
    let dist =
      match Loadgen.Dist.of_string "zipfian" with
      | Some d -> d
      | None -> assert false
    in
    let plan =
      Loadgen.generate ~n:requests ~nkeys ~dist ~mix ~arrivals ~clock ~seed
    in
    let ttl_cycles = max 1 (plan.Loadgen.arrivals.(requests - 1) / 4) in
    let ttl_for r = if r land 1 = 1 then Some ttl_cycles else None in
    let ctx0 = Runtime.Group.ctx group 0 in
    for r = 0 to nkeys - 1 do
      Store.put store ctx0 ~key:(key_of_rank r) ~value:(value_of_rank r)
    done;
    (* The resilience layer: deadlines and windows sized to the arrival
       process (base inter-arrival is 5 us at 200 k/s on this clock). *)
    let svc_cfg =
      {
        Resilience.Service.deadline = Exec.Clock.cycles_of_us clock 100;
        max_attempts = 4;
        backoff_base = Exec.Clock.cycles_of_us clock 1;
        backoff_cap = Exec.Clock.cycles_of_us clock 20;
        retry_ratio_pct = 10;
        retry_burst = 3;
        breaker =
          {
            Resilience.Breaker.window = Exec.Clock.cycles_of_ms clock 1;
            min_requests = 16;
            failure_pct = 50;
            cooldown = Exec.Clock.cycles_of_us clock 500;
            probes = 3;
          };
        elevated = limbo_bound / 8;
        brownout = limbo_bound / 4;
        escalate_every = Exec.Clock.cycles_of_us clock 100;
      }
    in
    let hooks =
      Array.init shards (fun k ->
          {
            Resilience.Service.limbo = (fun () -> Store.shard_limbo store k);
            pool = (fun () -> Store.shard_pool store k);
            wedged = (fun () -> Store.shard_wedged store k);
            escalate = (fun ctx -> Store.emergency_reclaim store ctx ~shard:k);
          })
    in
    let svc =
      Resilience.Service.create ~config:svc_cfg ~pids:nprocs ~seed hooks
    in
    let retryable = function
      | Memory.Arena.Out_of_memory _ | Memory.Arena.Arena_full _ -> true
      | _ -> false
    in
    (* One In_operation crash: the victim dies mid-operation on whichever
       shard it is traversing, partway into the burst.  The [at]
       threshold is in the victim's instrumented accesses (counted from
       install, i.e. post-prefill). *)
    let crash_at = 25_000 in
    let chaos_plan =
      { Chaos.seed; faults = [ Chaos.Crash { pid = 1; at = crash_at; kind = Chaos.In_operation } ] }
    in
    let chaos_plan =
      if E.deterministic then chaos_plan
      else fst (Chaos.degrade chaos_plan)
    in
    let engine =
      Chaos.install
        ~in_op:(fun ctx -> Store.in_operation store ctx)
        chaos_plan ~group ~heap:(Store.heaps store).(0)
    in
    let end_of_schedule = plan.Loadgen.arrivals.(requests - 1) in
    let degs =
      Array.init nprocs (fun _ ->
          Resilience.Degradation.create ~burst_start ~burst_end
            ~end_of_schedule ~bucket_cycles)
    in
    let exec_op ctx ~due op =
      let pid = ctx.Runtime.Ctx.pid in
      let key, priority, (work : unit -> unit) =
        match op with
        | Loadgen.Get r ->
            let k = key_of_rank r in
            (k, Resilience.Service.High, fun () -> ignore (Store.get store ctx k))
        | Loadgen.Put r ->
            let k = key_of_rank r in
            ( k,
              Resilience.Service.High,
              fun () ->
                Store.put ?ttl:(ttl_for r) store ctx ~key:k
                  ~value:(value_of_rank r) )
        | Loadgen.Delete r ->
            let k = key_of_rank r in
            (k, Resilience.Service.High, fun () -> ignore (Store.delete store ctx k))
        | Loadgen.Scan (start, len) ->
            ( key_of_rank start,
              Resilience.Service.Low,
              fun () ->
                for i = start to start + len - 1 do
                  ignore (Store.get store ctx (key_of_rank (i mod nkeys)))
                done )
      in
      let shard = Store.shard_of_key store key in
      let outcome =
        Resilience.Service.call svc ctx ~pid ~shard ~priority ~due ~retryable
          work
      in
      (shard, outcome)
    in
    let record ~pid ~op:_ ~shard:_ ~outcome ~start ~finish:_ =
      Resilience.Degradation.account degs.(pid) ~due:start outcome
    in
    let bodies = Loadgen.bodies plan ~group ~record ~exec_op in
    (* The straggler: park mid-operation on shard 1 for the first part of
       the burst — reclamation-pinning pressure exactly when the spike
       needs capacity.  DEBRA+ neutralizes it; plain epochs eat the limbo
       growth until it wakes. *)
    let straggler = nprocs - 1 in
    let stall_cycles = Exec.Clock.cycles_of_ms clock 1 in
    bodies.(straggler) <-
      (fun () ->
        let ctx = Runtime.Group.ctx group straggler in
        let wait = burst_start - Runtime.Ctx.now ctx in
        if wait > 0 then Runtime.Ctx.stall ctx wait;
        Runtime.Ctx.work ctx 1;
        Store.hold_shard store ctx ~shard:1 ~cycles:stall_cycles);
    let deg =
      Resilience.Degradation.create ~burst_start ~burst_end ~end_of_schedule
        ~bucket_cycles
    in
    let sample _now =
      for k = 0 to shards - 1 do
        Resilience.Degradation.observe_limbo deg (Store.shard_limbo store k)
      done
    in
    let tick = (Exec.Clock.cycles_of_us clock 20, sample) in
    let result = E.run ~tick group bodies in
    Array.iter (Resilience.Degradation.merge deg) degs;
    sample 0;
    Chaos.uninstall engine;
    Store.check_invariants store;
    let chaos_summary = Chaos.summary engine in
    let recovery_budget = Exec.Clock.cycles_of_ms clock 3 in
    let verdict =
      Resilience.Degradation.judge deg ~limbo_bound ~floor_pct
        ~recovery_budget
    in
    let stats = Resilience.Service.stats svc in
    let shard_json k =
      Telemetry.Json.Obj
        [
          ( "breaker",
            Telemetry.Json.String
              (Resilience.Breaker.state_name
                 (Resilience.Breaker.state (Resilience.Service.breaker svc k)))
          );
          ( "breaker_trips",
            Telemetry.Json.Int
              (Resilience.Breaker.trips (Resilience.Service.breaker svc k)) );
          ( "breaker_rejected",
            Telemetry.Json.Int
              (Resilience.Breaker.rejected (Resilience.Service.breaker svc k))
          );
          ("wedged", Telemetry.Json.Bool (Resilience.Service.wedged_seen svc k));
          ( "escalations",
            Telemetry.Json.Int (Resilience.Service.escalations svc k) );
          ( "escalate_freed",
            Telemetry.Json.Int (Resilience.Service.escalate_freed svc k) );
          ("limbo_after", Telemetry.Json.Int (Store.shard_limbo store k));
          ("pool_after", Telemetry.Json.Int (Store.shard_pool store k));
        ]
    in
    let pressure = Store.pressure store in
    let json =
      Telemetry.Json.Obj
        ([
           ("experiment", Telemetry.Json.String "e-overload");
           ("scheme", Telemetry.Json.String sname);
           ("structure", Telemetry.Json.String structure);
           ("backend", Telemetry.Json.String E.name);
           ("seed", Telemetry.Json.Int seed);
           ("requests", Telemetry.Json.Int requests);
           ("crashed", Telemetry.Json.Int chaos_summary.Chaos.crashes);
           ( "degradation",
             Resilience.Degradation.to_json deg verdict );
           ( "service",
             Telemetry.Json.Obj
               [
                 ("served", Telemetry.Json.Int stats.Resilience.Service.served);
                 ("shed", Telemetry.Json.Int stats.Resilience.Service.shed);
                 ( "rejected",
                   Telemetry.Json.Int stats.Resilience.Service.rejected );
                 ( "cancelled",
                   Telemetry.Json.Int stats.Resilience.Service.cancelled );
                 ("late", Telemetry.Json.Int stats.Resilience.Service.late);
                 ("failed", Telemetry.Json.Int stats.Resilience.Service.failed);
                 ( "retries",
                   Telemetry.Json.Int stats.Resilience.Service.retries );
                 ( "retries_denied",
                   Telemetry.Json.Int (Resilience.Service.retries_denied svc)
                 );
               ] );
           ( "shards",
             Telemetry.Json.List (List.init shards shard_json) );
           ( "alloc_retries",
             Telemetry.Json.Int pressure.Reclaim.Intf.Pressure.alloc_retries );
           ( "emergency_reclaims",
             Telemetry.Json.Int
               pressure.Reclaim.Intf.Pressure.emergency_reclaims );
           ( "elapsed_cycles",
             Telemetry.Json.Int result.Exec.Intf.elapsed_cycles );
         ]
        @
        (* Wall time is non-deterministic; keeping it out of sim rows
           keeps the replay self-check a byte-identity test. *)
        if E.deterministic then []
        else
          [
            ( "wall_seconds",
              Telemetry.Json.Float result.Exec.Intf.wall_seconds );
          ])
    in
    let deg_text =
      Telemetry.Json.to_string (Resilience.Degradation.to_json deg verdict)
    in
    (json, Some (verdict, deg_text))
end

module Cell_none = Make_cell (RM1_none)
module Cell_ebr = Make_cell (RM2_ebr)
module Cell_qsbr = Make_cell (RM2_qsbr)
module Cell_debra = Make_cell (RM2_debra)
module Cell_debra_plus = Make_cell (RM2_debra_plus)
module Cell_hp = Make_cell (RM2_hp)
module Cell_rc = Make_cell (RM2_rc)
module Cell_ts = Make_cell (RM2_ts)
module Cell_st = Make_cell (RM2_st)

type cell_run =
  sname:string ->
  structure:string ->
  backend:Exec.Backend.t ->
  requests:int ->
  seed:int ->
  unit ->
  Telemetry.Json.t * (Resilience.Degradation.verdict * string) option

let schemes : (string * cell_run * expectation) list =
  [
    ("none", Cell_none.run, Observe);
    ("ebr", Cell_ebr.run, Must_degrade);
    ("qsbr", Cell_qsbr.run, Must_degrade);
    ("debra", Cell_debra.run, Must_degrade);
    ("debra+", Cell_debra_plus.run, Must_pass);
    ("hp", Cell_hp.run, Observe);
    ("rc", Cell_rc.run, Observe);
    ("ts", Cell_ts.run, Observe);
    ("st", Cell_st.run, Observe);
  ]

let structures = [ "skiplist"; "bst" ]

let check_expectation expect
    (report : (Resilience.Degradation.verdict * string) option) =
  match (expect, report) with
  | Observe, _ -> []
  | Must_pass, None -> [ "expected a passing cell, but the run wedged" ]
  | Must_pass, Some (v, _) ->
      if v.Resilience.Degradation.passed then []
      else
        List.filter_map
          (fun (ok, what) -> if ok then None else Some what)
          [
            (v.Resilience.Degradation.limbo_ok, "limbo bound violated");
            (v.Resilience.Degradation.goodput_ok, "goodput floor broken");
            (v.Resilience.Degradation.recovery_ok, "recovery budget blown");
          ]
  | Must_degrade, None ->
      (* Wedging under faults is a (graceless) form of degradation for
         the verdict, but the run must still be accounted. *)
      []
  | Must_degrade, Some (v, _) ->
      if v.Resilience.Degradation.passed then
        [
          "expected degradation (wedged shard), but every verdict passed \
           — the crash fault may not have fired";
        ]
      else []

let run ~scale =
  let backend = !Experiments.backend in
  let requests =
    if !requests > 0 then !requests
    else if scale == Experiments.full_scale then 20_000
    else 6_000
  in
  let seed = match !replay_seed with Some s -> s | None -> 11 in
  let selected =
    if !scheme_filter = "" then schemes
    else begin
      let want = String.split_on_char ',' !scheme_filter in
      let missing =
        List.filter
          (fun w -> not (List.exists (fun (s, _, _) -> s = w) schemes))
          want
      in
      if missing <> [] then begin
        Printf.eprintf "e-overload: unknown scheme(s) %s (expected %s)\n"
          (String.concat "," missing)
          (String.concat "|" (List.map (fun (s, _, _) -> s) schemes));
        exit 2
      end;
      List.filter (fun (s, _, _) -> List.mem s want) schemes
    end
  in
  Printf.printf
    "\n\
     ===== E-overload: chaos-under-load campaign =====\n\
     backend %s | %d shards, %d workers + 1 straggler | %d requests over %d \
     keys\n\
     spike %.0f/s -> %.0f/s at %.0fms for %.1fms | crash In_operation | \
     stall %dus on shard 1\n\
     limbo bound (3n^2B): %d | goodput floor %.0f%% of pre-burst | seed %d\n"
    (Exec.Backend.to_string backend)
    shards n_workers requests nkeys base_rate (spike_mult *. base_rate)
    (spike_start_s *. 1e3) (spike_len_s *. 1e3) 1000 limbo_bound floor_pct
    seed;
  let cells = ref [] in
  List.iter
    (fun structure ->
      List.iter
        (fun (sname, (runf : cell_run), expect) ->
          let json, report =
            match runf ~sname ~structure ~backend ~requests ~seed () with
            | r -> r
            | exception Sim.Stuck info ->
                ( Telemetry.Json.Obj
                    [
                      ("experiment", Telemetry.Json.String "e-overload");
                      ("scheme", Telemetry.Json.String sname);
                      ("structure", Telemetry.Json.String structure);
                      ("seed", Telemetry.Json.Int seed);
                      ("wedged", Telemetry.Json.Bool true);
                      ( "reason",
                        Telemetry.Json.String
                          (Printf.sprintf "%s (after %d steps)"
                             info.Sim.s_reason info.Sim.s_steps) );
                    ],
                  None )
          in
          let errors = check_expectation expect report in
          (* Expectations are enforced only on the simulator: the
             degradation verdicts are timing-sensitive, and only the sim
             schedule is deterministic.  On domains the campaign still
             reports them, as warnings. *)
          if errors <> [] then begin
            (match backend with
            | `Sim ->
                incr failures;
                Printf.printf "FAIL %-9s %-8s (%s)\n" structure sname
                  (expectation_name expect)
            | `Domains ->
                Printf.printf "WARN %-9s %-8s (%s, advisory on domains)\n"
                  structure sname (expectation_name expect));
            List.iter (fun e -> Printf.printf "       %s\n" e) errors;
            Printf.printf "       replay: debra-bench e-overload --chaos-seed %d\n"
              seed
          end;
          cells :=
            {
              c_scheme = sname;
              c_structure = structure;
              c_seed = seed;
              c_expect = expect;
              c_report = report;
              c_json = json;
              c_errors = errors;
            }
            :: !cells;
          Experiments.record_kv_row json)
        selected)
    structures;
  let cells = List.rev !cells in
  (* Deterministic-replay self-check: the DEBRA+/skiplist cell, run twice
     on the simulator, must produce byte-identical JSON. *)
  (match backend with
  | `Domains -> ()
  | `Sim ->
      if List.exists (fun (s, _, _) -> s = "debra+") selected then begin
        let a, _ =
          Cell_debra_plus.run ~sname:"debra+" ~structure:"skiplist" ~backend
            ~requests ~seed ()
        in
        let b, _ =
          Cell_debra_plus.run ~sname:"debra+" ~structure:"skiplist" ~backend
            ~requests ~seed ()
        in
        let sa = Telemetry.Json.to_string a
        and sb = Telemetry.Json.to_string b in
        if not (String.equal sa sb) then begin
          incr failures;
          Printf.printf
            "FAIL determinism: debra+/skiplist replay diverged\n%s\n%s\n" sa sb
        end
        else Printf.printf "determinism self-check: replay byte-identical\n"
      end);
  (* Summary table. *)
  let pct_cell report pick =
    match report with
    | None -> "-"
    | Some (_, _) -> pick ()
  in
  let rows =
    List.map
      (fun c ->
        let v = Option.map fst c.c_report in
        [
          c.c_structure;
          c.c_scheme;
          expectation_name c.c_expect;
          (match c.c_report with None -> "WEDGED" | Some _ -> "ran");
          pct_cell c.c_report (fun () ->
              match v with
              | Some v ->
                  Printf.sprintf "%s/%s/%s"
                    (if v.Resilience.Degradation.limbo_ok then "limbo-ok"
                     else "LIMBO")
                    (if v.Resilience.Degradation.goodput_ok then "good-ok"
                     else "GOODPUT")
                    (if v.Resilience.Degradation.recovery_ok then "rec-ok"
                     else "RECOVERY")
              | None -> "-");
          (match v with
          | Some v when v.Resilience.Degradation.passed -> "pass"
          | Some _ -> "degraded"
          | None -> "wedged");
          (if c.c_errors = [] then "ok" else String.concat "; " c.c_errors);
        ])
      cells
  in
  Workload.Report.table ~title:"E-overload: degradation verdicts"
    ~header:
      [ "structure"; "scheme"; "expect"; "run"; "verdicts"; "result"; "gate" ]
    ~rows;
  let npass =
    List.length (List.filter (fun c -> c.c_errors = []) cells)
  in
  Printf.printf "%d/%d overload cells met their expectation.\n" npass
    (List.length cells);
  (* JSON degradation report (the CI artifact). *)
  let doc =
    Telemetry.Json.Obj
      [
        ("experiment", Telemetry.Json.String "e-overload");
        ("backend", Telemetry.Json.String (Exec.Backend.to_string backend));
        ("seed", Telemetry.Json.Int seed);
        ("requests", Telemetry.Json.Int requests);
        ("limbo_bound", Telemetry.Json.Int limbo_bound);
        ("cells", Telemetry.Json.List (List.map (fun c -> c.c_json) cells));
      ]
  in
  let oc = open_out "DEGRADATION_REPORT.json" in
  output_string oc (Telemetry.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "degradation report written to DEGRADATION_REPORT.json\n%!"
