(** The VBR/Hyaline-vs-DEBRA+ throughput sweep (BENCH_SWEEP.json).

    The two next-generation reclaimers ride the same Record Manager face
    as the paper's schemes; this campaign pins their cost story against
    DEBRA+ — the paper's best performer — on two structures and both
    execution backends:

    - {e sim} cells run in deterministic virtual time: Mops/s and
      cycles/op are exact functions of the code, so the regression gate
      (tools/bench_gate.py) holds them to the normal tolerance against
      the checked-in baseline;
    - {e domains} cells run on real OCaml 5 domains against the wall
      clock: their throughput is recorded as [wall_mops] — a field the
      gate's direction tables deliberately do not know — so the rows
      document real-parallelism behaviour without making CI hostage to
      runner hardware.

    Every cell reuses the exp2-shape workload (prefilled structure,
    50i-50d, reclaimed records reused through the pool), so the numbers
    sit directly beside Fig. 8 (right). *)

(* (structure, runner-table variant): the zoo table carries every
   implemented scheme on the BST; the list's exp2 table was grown the
   same way. *)
let structures = [ ("bst", "zoo"); ("list", "exp2") ]
let schemes = [ "debra+"; "vbr"; "hyaline" ]

let cycles_per_op (o : Workload.Trial.outcome) =
  if o.Workload.Trial.ops = 0 then infinity
  else
    float_of_int o.Workload.Trial.nprocs
    *. float_of_int o.Workload.Trial.virtual_time
    /. float_of_int o.Workload.Trial.ops

let sweep_cfg ~backend ~scale ~n ~range =
  {
    Workload.Schemes.backend;
    machine = Machine.Config.intel_i7_4770;
    params = Reclaim.Intf.Params.default;
    duration =
      (match backend with
      | `Sim -> scale.Experiments.duration
      (* Sim durations are virtual-time budgets; on real domains they
         would elapse before every domain spawns (1 cycle = 1 ns). *)
      | `Domains -> max scale.Experiments.duration 20_000_000);
    n;
    range;
    ins = 50;
    del = 50;
    seed = 7;
    capacity = range + 400_000;
    sanitize = false;
    telemetry = None;
    stall = None;
    chaos = None;
    budget = -1;
    max_steps = None;
    history = None;
  }

let sim_row ~structure ~scheme (o : Workload.Trial.outcome) =
  let open Telemetry.Json in
  Obj
    [
      ("kind", String "sweep");
      ("structure", String structure);
      ("scheme", String scheme);
      ("cell", String "sim");
      ("ops", Int o.Workload.Trial.ops);
      ("virtual_time", Int o.Workload.Trial.virtual_time);
      ("limbo", Int o.Workload.Trial.limbo);
      ("cycles_per_op", Float (cycles_per_op o));
      ("mops", Float o.Workload.Trial.mops);
    ]

(* Wall-clock throughput under a deliberately different name: wall time
   is genuinely non-deterministic, and the gate gates what it knows. *)
let domains_row ~structure ~scheme (o : Workload.Trial.outcome) =
  let open Telemetry.Json in
  Obj
    [
      ("kind", String "sweep");
      ("structure", String structure);
      ("scheme", String scheme);
      ("cell", String "domains");
      ("ops", Int o.Workload.Trial.ops);
      ("wall_seconds", Float o.Workload.Trial.wall_seconds);
      ("wall_mops", Float o.Workload.Trial.mops);
    ]

let run ~scale =
  let n = 4 and range = scale.Experiments.small_range in
  Printf.printf
    "\n\
     ===== sweep: VBR / Hyaline vs DEBRA+ =====\n\
     %d processes, keys [1,%d], 50i-50d; sim cells gated, domains cells \
     informational.\n"
    n range;
  let rows = ref [] in
  let cell ~backend ~structure ~variant ~scheme =
    match Workload.Schemes.find_runner ~ds:structure ~variant ~scheme with
    | None ->
        Printf.eprintf "sweep: no runner for %s/%s %s\n" structure variant
          scheme;
        exit 2
    | Some r ->
        let o = r.Workload.Schemes.run (sweep_cfg ~backend ~scale ~n ~range) in
        let json, result =
          match backend with
          | `Sim ->
              ( sim_row ~structure ~scheme o,
                Printf.sprintf "%s  (%.0f cycles/op)"
                  (Workload.Report.fmt_mops o.Workload.Trial.mops)
                  (cycles_per_op o) )
          | `Domains ->
              ( domains_row ~structure ~scheme o,
                Printf.sprintf "%s wall"
                  (Workload.Report.fmt_mops o.Workload.Trial.mops) )
        in
        Experiments.record_kv_row json;
        rows :=
          [
            structure;
            scheme;
            (match backend with `Sim -> "sim" | `Domains -> "domains");
            string_of_int o.Workload.Trial.ops;
            result;
          ]
          :: !rows
  in
  List.iter
    (fun (structure, variant) ->
      List.iter
        (fun scheme -> cell ~backend:`Sim ~structure ~variant ~scheme)
        schemes)
    structures;
  (* Real parallelism where the host has it; a single-core host still
     runs the cells (timeslicing domains), it just measures less. *)
  List.iter
    (fun (structure, variant) ->
      List.iter
        (fun scheme -> cell ~backend:`Domains ~structure ~variant ~scheme)
        schemes)
    structures;
  Workload.Report.table ~title:"sweep: VBR / Hyaline vs DEBRA+"
    ~header:[ "structure"; "scheme"; "cell"; "ops"; "throughput" ]
    ~rows:(List.rev !rows)
