(** E-scale: context-count scaling campaign (64 -> 256 -> 1024).

    The paper's qualitative scaling claim: hazard-pointer reclamation must
    scan every process' announcement slots — an O(nk) walk — to free
    anything, so at a {e fixed per-process limbo budget} its per-op scan
    cost grows linearly with the process count, while DEBRA's distributed
    epochs (and DEBRA+'s neutralizing variant) amortize reclamation to
    O(1) per op and stay near-flat.  (HP's usual escape is to scale its
    scan threshold with Θ(nk) retires, which trades the time back for
    O(n²k) unreclaimed records — at 1024 contexts that is millions of
    records, past any sane capacity; this campaign pins the budget and
    measures the time side of the trade.)

    The sweep runs the T4-family machine model ({!Machine.Config.scale})
    at 64, 256 and 1024 hardware contexts with one process per context, on
    the BST (hp / debra / debra+) and the skip list (hp / debra —
    lock-based updates take no neutralization, as in the paper), and
    renders a divergence table: per-op cost in cycles, and its ratio to
    the same scheme's 64-context cell.

    The sweep weak-scales: per-proc virtual duration is constant and the
    key range grows with the context count, so warm-up, contention and
    the per-process retire rate are comparable across scales and only the
    reclamation term grows.  Total simulated work therefore grows
    linearly with contexts — the 1024-context cell is the expensive one,
    by design.  Per-op cost is a mean over the whole trial and is exactly
    reproducible (virtual cycles, not wall time).

    With [--json] the campaign also measures two host-side throughput
    baselines for the refactored engines and writes everything to
    BENCH_e-scale.json (checked in as BENCH_SIM.json, gated by
    tools/bench_gate.py):
    - scheduler steps/sec: a 256-process contended-counter trial driven
      straight through {!Sim.run} on the indexed ready-set scheduler;
    - explore runs/sec: two list cells of the systematic-exploration
      matrix (one truncated, one exhausted) through the replay-job engine. *)

open Common

(* Set by bench/main.ml's --explore-domains flag: worker domains for the
   explore-throughput baseline (1 = serial reference engine). *)
let explore_domains = ref 1

(* Cells whose HP-vs-DEBRA divergence regresses fail the run (checked in
   CI's scale smoke); counted here, reported by main. *)
let failures = ref 0

let contexts_sweep = [ 64; 256; 1024 ]

(* Constant per-proc virtual duration across the sweep: per-op cost stays
   comparable between scales, and only the reclamation term grows. *)
let duration_for ~scale = scale.Experiments.duration

(* Fixed per-process limbo budget: small limbo blocks and no Θ(nk) slack
   on HP's scan threshold (it falls back to two blocks = 8 records), so
   scans fire repeatedly at every scale — even in the slow, high-slot-count
   skip-list cells, whose per-proc retire counts would sit under a larger
   threshold for the whole trial — and their O(nk) walk is the measured
   term.  DEBRA+'s suspect threshold is counted in blocks, so shrinking
   blocks must not shrink it in records: 256 blocks * 4 = the default 1024
   records, keeping neutralization a genuine-starvation response rather
   than a small-block artifact (at 1024 contexts a 16-record trigger turns
   into an op-restarting signal storm). *)
let escale_params =
  {
    Reclaim.Intf.Params.default with
    Reclaim.Intf.Params.block_capacity = 4;
    hp_retire_factor = 0;
    suspect_blocks = 256;
  }

(* Weak scaling: the key range grows with the context count so per-process
   key density — and with it the delete success rate, hence the retire rate
   — is comparable across the sweep.  With a fixed range, contention at
   1024 contexts makes most deletes fail, retires per op collapse, and the
   very scans the campaign measures stop firing. *)
let cell_cfg ~scale ~n =
  let machine = Machine.Config.scale ~contexts:n in
  let range = scale.Experiments.small_range * n / 64 in
  let scale = { scale with Experiments.duration = duration_for ~scale } in
  Experiments.base_cfg ~machine ~params:escale_params ~scale ~range ~ins:50
    ~del:50 n

let cycles_per_op (o : Workload.Trial.outcome) =
  if o.Workload.Trial.ops = 0 then infinity
  else
    float_of_int o.Workload.Trial.nprocs
    *. float_of_int o.Workload.Trial.virtual_time
    /. float_of_int o.Workload.Trial.ops

let json_row ~structure ~scheme ~contexts (o : Workload.Trial.outcome) =
  let open Telemetry.Json in
  Obj
    [
      ("kind", String "escale");
      ("structure", String structure);
      ("scheme", String scheme);
      ("contexts", Int contexts);
      ("ops", Int o.Workload.Trial.ops);
      ("virtual_time", Int o.Workload.Trial.virtual_time);
      ("cycles_per_op", Float (cycles_per_op o));
      ("mops", Float o.Workload.Trial.mops);
    ]

(* One structure's sweep: runners as rows, context counts as columns, each
   cell "cycles/op (xRatio-to-64)". Returns (scheme, [n, cycles/op]). *)
let sweep ~scale ~structure runners =
  let results =
    List.map
      (fun (r : runner) ->
        ( r.rname,
          List.map
            (fun n ->
              let o = r.run (cell_cfg ~scale ~n) in
              Experiments.record_kv_row
                (json_row ~structure ~scheme:r.rname ~contexts:n o);
              (n, cycles_per_op o))
            contexts_sweep ))
      runners
  in
  let header =
    "scheme" :: List.map (fun n -> Printf.sprintf "%d ctx" n) contexts_sweep
  in
  let rows =
    List.map
      (fun (scheme, cells) ->
        let base = match cells with (_, c) :: _ -> c | [] -> 1.0 in
        scheme
        :: List.map
             (fun (_, c) -> Printf.sprintf "%.0f cyc/op (x%.2f)" c (c /. base))
             cells)
      results
  in
  Workload.Report.table
    ~title:
      (Printf.sprintf
         "E-scale / %s: per-op cost vs context count (ratio to 64 ctx)"
         structure)
    ~header ~rows;
  results

let divergence results =
  let ratio scheme =
    match List.assoc_opt scheme results with
    | Some cells -> (
        match (cells, List.rev cells) with
        | (_, first) :: _, (_, last) :: _ when first > 0.0 -> Some (last /. first)
        | _ -> None)
    | None -> None
  in
  (ratio "hp", ratio "debra")

let check_divergence ~structure results =
  match divergence results with
  | Some hp, Some debra ->
      Printf.printf
        "  %s divergence 64 -> %d ctx: hp x%.2f, debra x%.2f — %s\n"
        structure
        (List.fold_left max 0 contexts_sweep)
        hp debra
        (if hp > debra then "hp per-op cost grows faster (expected)"
         else "UNEXPECTED: hp did not diverge from debra");
      if hp <= debra then incr failures
  | _ ->
      Printf.printf "  %s divergence: missing hp or debra cell\n" structure;
      incr failures

(* Scheduler-throughput baseline: a contended shared-counter workload
   driven straight through Sim.run, no reclamation — measures the indexed
   ready-set / pairing-heap scheduler core itself. *)
let sched_baseline () =
  let n = 256 in
  let machine = Machine.Config.scale ~contexts:n in
  let group = Runtime.Group.create n in
  let counters = Runtime.Shared_array.create 64 in
  let bodies =
    Array.init n (fun pid ->
        fun () ->
         let ctx = Runtime.Group.ctx group pid in
         for i = 0 to 199 do
           ignore (Runtime.Shared_array.faa ctx counters (pid mod 64) 1);
           Runtime.Ctx.work ctx 20;
           if i mod 16 = pid mod 16 then Runtime.Ctx.stall ctx (100 + pid)
         done)
  in
  let t0 = Unix.gettimeofday () in
  let r = Sim.run ~machine group bodies in
  let wall = Unix.gettimeofday () -. t0 in
  let sps = float_of_int r.Sim.steps /. wall in
  Printf.printf
    "  scheduler: %d procs, %d steps, %.2fs wall, %.0f steps/sec\n"
    n r.Sim.steps wall sps;
  let open Telemetry.Json in
  Experiments.record_kv_row
    (Obj
       [
         ("kind", String "sched");
         ("contexts", Int n);
         ("steps", Int r.Sim.steps);
         ("virtual_time", Int r.Sim.virtual_time);
         ("wall_seconds", Float wall);
         ("steps_per_sec", Float sps);
       ])

(* Explore-throughput baseline: one exhausted and one truncated list cell
   of the lincheck matrix through the replay-job engine. *)
let explore_baseline () =
  let cfg =
    {
      Workload.Lin_harness.default_config with
      nprocs = 2;
      ops_per_proc = 3;
      key_range = 2;
      prefill = 1;
    }
  in
  let workers = !explore_domains in
  List.iter
    (fun scheme ->
      let t0 = Unix.gettimeofday () in
      let v =
        Workload.Lin_harness.explore ~budget:2 ~max_runs:300 ~workers
          ~ds:"list" ~scheme cfg
      in
      let wall = Unix.gettimeofday () -. t0 in
      let runs =
        match v with
        | Lincheck.Explore.Pass st -> st.Lincheck.Explore.runs
        | Lincheck.Explore.Fail { stats; _ } -> stats.Lincheck.Explore.runs
      in
      let rps = float_of_int runs /. wall in
      Printf.printf
        "  explore: list x %-5s %d runs, %.2fs wall, %.0f runs/sec%s\n"
        scheme runs wall rps
        (if workers > 1 then Printf.sprintf " (%d domains)" workers else "");
      let open Telemetry.Json in
      Experiments.record_kv_row
        (Obj
           [
             ("kind", String "explore");
             ("cell", String ("list x " ^ scheme));
             ("domains", Int workers);
             ("runs", Int runs);
             ("wall_seconds", Float wall);
             ("runs_per_sec", Float rps);
           ]))
    [ "debra"; "ebr" ]

let run ~scale =
  Printf.printf "\n===== E-scale (context-count scaling campaign) =====\n";
  Printf.printf
    "One process per hardware context on the scaled T4 model; per-op cost \
     in virtual cycles.\nFixed per-process limbo budget: HP's O(nk) \
     announcement scan should diverge as contexts grow;\nDEBRA/DEBRA+ \
     amortize reclamation and should stay near-flat.\n";
  let bst =
    sweep ~scale ~structure:"bst"
      [
        B2_debra.runner "debra"; B2_debra_plus.runner "debra+";
        B2_hp.runner "hp";
      ]
  in
  check_divergence ~structure:"bst" bst;
  let sl =
    sweep ~scale ~structure:"skiplist"
      [ S2_debra.runner "debra"; S2_hp.runner "hp" ]
  in
  check_divergence ~structure:"skiplist" sl;
  Printf.printf "\n  engine throughput baselines (wall-clock, host-side):\n";
  sched_baseline ();
  explore_baseline ()
