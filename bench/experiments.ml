(** The paper's experiments (§7), one function per table/figure.  See
    DESIGN.md's per-experiment index and EXPERIMENTS.md for paper-vs-measured
    results. *)

open Common

type scale = {
  threads : int list;
  duration : int;
  big_range : int;  (* paper: 10^6 *)
  small_range : int;  (* paper: 10^4 *)
  sl_range : int;  (* paper: 2*10^5 *)
}

let quick_scale =
  {
    threads = [ 1; 2; 4; 8; 16 ];
    duration = 1_200_000;
    big_range = 100_000;
    small_range = 10_000;
    sl_range = 50_000;
  }

let full_scale =
  {
    threads = [ 1; 2; 3; 4; 6; 8; 10; 12; 14; 16 ];
    duration = 6_000_000;
    big_range = 1_000_000;
    small_range = 10_000;
    sl_range = 200_000;
  }

(* Set by bench/main.ml's --sanitize flag.  Default off: all numbers in
   EXPERIMENTS.md are measured without the sanitizer attached. *)
let sanitize = ref false

(* Set by bench/main.ml's --check-linearizability / --history-out flags:
   every trial records its operation history; checked histories feed
   [lin_failures], and --history-out keeps the last trial's history. *)
let check_lin = ref false
let history_out : string option ref = ref None
let lin_failures = ref 0
let current_history : Lincheck.History.recorder option ref = ref None

(* Set by bench/main.ml's --json flag: every trial gets a fresh telemetry
   recorder (so outcomes carry latency percentiles) and every outcome is
   appended to [json_rows]; main.ml drains the list into one
   BENCH_<experiment>.json per experiment. *)
let json = ref false
let json_rows : Telemetry.Json.t list ref = ref []

(* Set by bench/main.ml's --backend flag.  Under [`Domains] the trial
   duration is floored to ~20 ms of wall time (1 cycle = 1 ns): sim-scale
   durations are virtual-time budgets and would elapse before every domain
   even spawns. *)
let backend : Exec.Backend.t ref = ref `Sim

let effective_duration duration =
  match !backend with `Sim -> duration | `Domains -> max duration 20_000_000

let percentile_key p =
  if Float.is_integer p then Printf.sprintf "p%.0f" p
  else
    "p"
    ^ String.concat ""
        (String.split_on_char '.' (Printf.sprintf "%.1f" p))

let outcome_json (o : Workload.Trial.outcome) =
  let open Telemetry.Json in
  Obj
    [
      ("scheme", String o.Workload.Trial.scheme);
      ("backend", String o.Workload.Trial.backend);
      ("wall_seconds", Float o.Workload.Trial.wall_seconds);
      ("nprocs", Int o.Workload.Trial.nprocs);
      ("ops", Int o.Workload.Trial.ops);
      ("mops", Float o.Workload.Trial.mops);
      ("bytes_peak", Int o.Workload.Trial.bytes_peak);
      ("bytes_claimed", Int o.Workload.Trial.bytes_claimed);
      ("limbo", Int o.Workload.Trial.limbo);
      ("neutralized", Int o.Workload.Trial.neutralized);
      ("oom", Bool o.Workload.Trial.oom);
      ( "latency_ns",
        Obj
          (List.map
             (fun (kind, ps) ->
               ( kind,
                 Obj (List.map (fun (p, v) -> (percentile_key p, Int v)) ps) ))
             o.Workload.Trial.latency) );
    ]

(* Post-trial history handling: dump and/or WGL-check the recorded
   history.  The check is exponential in overlap; bench-scale histories
   usually exceed the node budget, in which case we say so rather than
   pretend a verdict (use quick --full=off scales, or the --explore
   matrix, for real checking). *)
let check_history (o : Workload.Trial.outcome) =
  match !current_history with
  | None -> ()
  | Some r -> (
      current_history := None;
      let h = Lincheck.History.snapshot r in
      (match !history_out with
      | None -> ()
      | Some file ->
          Lincheck.History.save h file;
          Printf.printf "  [history: %d events -> %s]\n%!"
            (Lincheck.History.ops h) file);
      if !check_lin then
        match Lincheck.Checker.check Lincheck.Spec.set h with
        | Lincheck.Checker.Linearizable ->
            Printf.printf "  [linearizability: %s %dp ok (%d events)]\n%!"
              o.Workload.Trial.scheme o.Workload.Trial.nprocs
              (Lincheck.History.ops h)
        | Lincheck.Checker.Non_linearizable _ as v ->
            incr lin_failures;
            Printf.printf "  [linearizability: %s %dp] %s\n%!"
              o.Workload.Trial.scheme o.Workload.Trial.nprocs
              (Lincheck.Checker.verdict_to_string v)
        | exception Lincheck.Checker.Gave_up n ->
            Printf.printf
              "  [linearizability: gave up after %d search nodes (%d events) — history too large for WGL; shrink the workload or use --explore]\n%!"
              n (Lincheck.History.ops h))

let record_outcome o =
  check_history o;
  if !json then json_rows := outcome_json o :: !json_rows

(* The kv experiment builds its own JSON rows (open-loop runs have no
   Trial.outcome); it feeds the same accumulator. *)
let record_kv_row row = if !json then json_rows := row :: !json_rows

(* Shadow Common's run_panel so every panel in this file feeds the JSON
   accumulator. *)
let run_panel ~title ~runners ~threads ~cfg_of =
  run_panel ~on_outcome:record_outcome ~title ~runners ~threads ~cfg_of ()

let base_cfg ?(machine = Machine.Config.intel_i7_4770)
    ?(params = Reclaim.Intf.Params.default) ~scale ~range ~ins ~del n =
  {
    backend = !backend;
    machine;
    params;
    duration = effective_duration scale.duration;
    n;
    range;
    ins;
    del;
    seed = 7;
    capacity = range + 400_000;
    sanitize = !sanitize;
    telemetry =
      (if !json then
         Some
           (Telemetry.Recorder.create
              ~cycles_per_ns:(Exec.Clock.cycles_per_ns (Exec.Backend.clock !backend))
              ~nprocs:n ())
       else None);
    stall = None;
    chaos = None;
    budget = -1;
    max_steps = None;
    history =
      (if !check_lin || !history_out <> None then begin
         let r = Lincheck.History.recorder ~nprocs:n in
         current_history := Some r;
         Some r
       end
       else None);
  }

let mixes = [ (50, 50); (25, 25) ]

(* Experiments 1-3 share the same six panels (Figs. 8 and 10). *)
let throughput_experiment ~name ~note ~scale ~bst_runners ~sl_runners =
  Printf.printf "\n===== %s =====\n%s\n" name note;
  List.iter
    (fun (ins, del) ->
      run_panel
        ~title:
          (Printf.sprintf "%s / BST, key range [0,%d), %s (Mops/s)" name
             scale.big_range (mix_name ins del))
        ~runners:bst_runners ~threads:scale.threads
        ~cfg_of:(base_cfg ~scale ~range:scale.big_range ~ins ~del);
      run_panel
        ~title:
          (Printf.sprintf "%s / BST, key range [0,%d), %s (Mops/s)" name
             scale.small_range (mix_name ins del))
        ~runners:bst_runners ~threads:scale.threads
        ~cfg_of:(base_cfg ~scale ~range:scale.small_range ~ins ~del);
      run_panel
        ~title:
          (Printf.sprintf "%s / skip list, key range [0,%d), %s (Mops/s)" name
             scale.sl_range (mix_name ins del))
        ~runners:sl_runners ~threads:scale.threads
        ~cfg_of:(base_cfg ~scale ~range:scale.sl_range ~ins ~del))
    mixes

let exp1 ~scale =
  throughput_experiment ~name:"Experiment 1 (Fig. 8 left)"
    ~note:
      "Overhead of reclamation: schemes do all their work but records are \
       never reused (bump allocator, no pool)."
    ~scale ~bst_runners:bst_runners_exp1 ~sl_runners:skiplist_runners_exp1

let exp2 ~scale =
  throughput_experiment ~name:"Experiment 2 (Fig. 8 right)"
    ~note:"Records are reclaimed and reused through the DEBRA pool."
    ~scale ~bst_runners:bst_runners_exp2 ~sl_runners:skiplist_runners_exp2

let exp3 ~scale =
  throughput_experiment ~name:"Experiment 3 (Fig. 10)"
    ~note:
      "Same as Experiment 2, with a malloc-style allocator (uniform extra \
       cost per allocation) instead of the preallocating bump allocator."
    ~scale ~bst_runners:bst_runners_exp3 ~sl_runners:skiplist_runners_exp3

(* Fig. 9 (left): Experiment 2 on the 64-context NUMA machine model. *)
let exp2_t4 ~scale =
  Printf.printf "\n===== Experiment 2 on Oracle T4-1 (Fig. 9 left) =====\n";
  let threads = [ 1; 2; 4; 8; 16; 32; 64 ] in
  let machine = Machine.Config.oracle_t4_1 in
  List.iter
    (fun (ins, del) ->
      run_panel
        ~title:
          (Printf.sprintf
             "T4-1 / BST, key range [0,%d), %s (Mops/s, 8 sockets x 8)"
             scale.big_range (mix_name ins del))
        ~runners:bst_runners_exp2 ~threads
        ~cfg_of:(base_cfg ~machine ~scale ~range:scale.big_range ~ins ~del))
    mixes

(* Fig. 9 (right): memory allocated for records; BST 10^4, 50i-50d.  Past 8
   processes the i7 model is oversubscribed, which is where DEBRA's epoch
   stalls and DEBRA+'s neutralization pays off. *)
let memfig ~scale =
  Printf.printf "\n===== Memory figure (Fig. 9 right) =====\n";
  Printf.printf
    "Total memory allocated for records (bump-pointer movement), BST keys \
     [0,%d), 50i-50d.\n\
     Past 8 processes the machine is oversubscribed; the scheduling quantum \
     is raised to a realistic multi-millisecond stall so a descheduled \
     non-quiescent process blocks DEBRA's epoch for a long stretch, as on \
     the paper's Linux testbed.\n"
    scale.small_range;
  let threads = [ 1; 2; 4; 8; 12; 16 ] in
  let runners = bst_runners_exp2 in
  let machine =
    { Machine.Config.intel_i7_4770 with Machine.Config.quantum = 2_500_000 }
  in
  let scale = { scale with duration = max scale.duration 10_000_000 } in
  let base_cfg ~scale ~range ~ins ~del n =
    base_cfg ~machine ~scale ~range ~ins ~del n
  in
  let header =
    "procs"
    :: List.concat_map
         (fun r ->
           match r.rname with
           | "none" -> [ r.rname ]
           | "debra+" -> [ r.rname; "limbo"; "neutralized" ]
           | _ -> [ r.rname; "limbo" ])
         runners
  in
  let rows =
    List.map
      (fun n ->
        let cfg = base_cfg ~scale ~range:scale.small_range ~ins:50 ~del:50 n in
        string_of_int n
        :: List.concat_map
             (fun r ->
               let o = r.run cfg in
               record_outcome o;
               let mem =
                 Workload.Report.fmt_bytes o.Workload.Trial.bytes_claimed_trial
               in
               let mem = if o.Workload.Trial.oom then mem ^ " (OOM)" else mem in
               let limbo = string_of_int o.Workload.Trial.limbo in
               match r.rname with
               | "none" -> [ mem ]
               | "debra+" ->
                   [ mem; limbo; string_of_int o.Workload.Trial.neutralized ]
               | _ -> [ mem; limbo ])
             runners)
      threads
  in
  Workload.Report.table
    ~title:"Fig. 9 (right): memory allocated for records during the trial"
    ~header ~rows

(* Ablations for the design choices of §4 (not a paper figure; supports the
   paper's design discussion). *)
let ablate ~scale =
  Printf.printf "\n===== Ablations (DEBRA design choices, paper §4) =====\n";
  let p = Reclaim.Intf.Params.default in
  let cfg_with params n =
    {
      (base_cfg ~scale ~range:scale.small_range ~ins:50 ~del:50 n) with
      params;
    }
  in
  let threads = [ 4; 8; 16 ] in
  (* CHECK_THRESH sweep *)
  let header = "procs" :: List.map (fun v -> Printf.sprintf "check=%d" v) [ 1; 4; 16; 64 ] in
  let rows =
    List.map
      (fun n ->
        string_of_int n
        :: List.map
             (fun check_thresh ->
               let params = { p with Reclaim.Intf.Params.check_thresh } in
               let o = (List.nth bst_runners_exp2 1).run (cfg_with params n) in
               Workload.Report.fmt_mops o.Workload.Trial.mops)
             [ 1; 4; 16; 64 ])
      threads
  in
  Workload.Report.table
    ~title:"DEBRA: incremental announcement scanning (CHECK_THRESH), BST 10^4 50i-50d (Mops/s)"
    ~header ~rows;
  (* INCR_THRESH sweep *)
  let values = [ 1; 10; 100; 1000 ] in
  let header = "procs" :: List.map (fun v -> Printf.sprintf "incr=%d" v) values in
  let rows =
    List.map
      (fun n ->
        string_of_int n
        :: List.map
             (fun incr_thresh ->
               let params = { p with Reclaim.Intf.Params.incr_thresh } in
               let o = (List.nth bst_runners_exp2 1).run (cfg_with params n) in
               Workload.Report.fmt_mops o.Workload.Trial.mops)
             values)
      threads
  in
  Workload.Report.table
    ~title:"DEBRA: epoch-advance throttling (INCR_THRESH), BST 10^4 50i-50d (Mops/s)"
    ~header ~rows;
  (* Block size sweep *)
  let values = [ 16; 64; 256; 1024 ] in
  let header = "procs" :: List.map (fun v -> Printf.sprintf "B=%d" v) values in
  let rows =
    List.map
      (fun n ->
        string_of_int n
        :: List.map
             (fun block_capacity ->
               let params = { p with Reclaim.Intf.Params.block_capacity } in
               let o = (List.nth bst_runners_exp2 1).run (cfg_with params n) in
               Workload.Report.fmt_mops o.Workload.Trial.mops)
             values)
      threads
  in
  Workload.Report.table
    ~title:"DEBRA: limbo-bag block size B, BST 10^4 50i-50d (Mops/s)" ~header
    ~rows;
  (* Announcement padding on the NUMA machine *)
  let header = [ "procs"; "padded"; "unpadded" ] in
  let rows =
    List.map
      (fun n ->
        let run padded =
          let params = { p with Reclaim.Intf.Params.padded_announcements = padded } in
          let cfg =
            {
              (base_cfg ~machine:Machine.Config.oracle_t4_1 ~scale
                 ~range:scale.small_range ~ins:25 ~del:25 n)
              with
              params;
            }
          in
          (List.nth bst_runners_exp2 1).run cfg
        in
        [
          string_of_int n;
          Workload.Report.fmt_mops (run true).Workload.Trial.mops;
          Workload.Report.fmt_mops (run false).Workload.Trial.mops;
        ])
      [ 16; 32; 64 ]
  in
  Workload.Report.table
    ~title:
      "DEBRA: padded vs unpadded announcements on the T4-1 model, BST 10^4 \
       25i-25d-50s (Mops/s)"
    ~header ~rows;
  (* Every implemented scheme on one panel: reproduces the paper's §3
     qualitative ranking (RC slowest, HP slow, epochs fast). *)
  run_panel
    ~title:
      "Scheme zoo: every implemented reclaimer, BST 10^4 50i-50d (Mops/s)"
    ~runners:bst_runners_zoo ~threads:scale.threads
    ~cfg_of:(base_cfg ~scale ~range:scale.small_range ~ins:50 ~del:50);
  (* Classical EBR vs DEBRA: what "distributing" EBR buys. *)
  let runners =
    [
      B1_none.runner "none";
      B2_ebr.runner "ebr";
      B2_debra.runner "debra";
      B2_debra_plus.runner "debra+";
    ]
  in
  run_panel
    ~title:"Classical EBR vs DEBRA (shared bags + full scans vs distributed), BST 10^4 50i-50d (Mops/s)"
    ~runners ~threads:scale.threads
    ~cfg_of:(base_cfg ~scale ~range:scale.small_range ~ins:50 ~del:50)
