(** Benchmark harness entry point.

    One argument per paper artifact:
    - exp1     Fig. 8 (left): overhead of reclamation, no reuse
    - exp2     Fig. 8 (right): reclaimed records reused through the pool
    - exp2-t4  Fig. 9 (left): Experiment 2 on the 64-context NUMA model
    - exp3     Fig. 10: malloc-style allocator
    - memfig   Fig. 9 (right): memory allocated + neutralization counts
    - schemes  Fig. 2: summary table of reclamation schemes
    - summary  §7/§8 scalar claims, paper vs measured
    - ablate   DEBRA design-choice ablations (§4)
    - micro    Bechamel microbenchmarks of the Record Manager primitives
    - e-stall  stalled-process campaign: limbo time series, DEBRA vs DEBRA+
    - e-chaos  fault-injection campaign: crashes, signal loss, bounded memory
    - e-scale  context-count scaling campaign (64 -> 256 -> 1024): per-op
               cost divergence HP vs DEBRA/DEBRA+, plus scheduler and
               explorer throughput baselines (BENCH_SIM.json)
    - sweep    VBR / Hyaline vs DEBRA+ on two structures and both
               backends (BENCH_SWEEP.json; sim cells regression-gated)
    - all      everything above

    [--full] uses the paper-scale key ranges and thread counts (slow); the
    default "quick" scale shrinks the big key range and the grid.
    [--json] also writes one BENCH_<experiment>.json per experiment;
    [--trace FILE] / [--metrics-out FILE] apply to e-stall;
    [--chaos-seed N] replays one e-chaos seed instead of the sweep.

    Linearizability plumbing (lib/lincheck):
    [--explore BUDGET] runs the systematic-exploration matrix (every
    scheme x structure, bounded preemptions, every history checked)
    instead of the experiments; [--check-linearizability] records and
    WGL-checks each trial's history (bench-scale histories usually
    exceed the checker budget — it says so honestly); [--history-out
    FILE] dumps the last trial's history as JSON. *)

let known =
  [
    "exp1"; "exp2"; "exp2-t4"; "exp3"; "memfig"; "schemes"; "summary";
    "ablate"; "micro"; "e-stall"; "e-chaos"; "kv"; "e-overload"; "e-scale";
    "sweep"; "all";
  ]

let run_one ~scale = function
  | "exp1" -> Experiments.exp1 ~scale
  | "exp2" -> Experiments.exp2 ~scale
  | "exp2-t4" -> Experiments.exp2_t4 ~scale
  | "exp3" -> Experiments.exp3 ~scale
  | "memfig" -> Experiments.memfig ~scale
  | "schemes" -> Fig2.print ()
  | "summary" -> Summary.run ~scale
  | "ablate" -> Experiments.ablate ~scale
  | "micro" -> Micro.run ()
  | "e-stall" -> Stall.run ~scale
  | "e-chaos" -> E_chaos.run ~scale
  | "kv" -> Kv_bench.run ~scale
  | "e-overload" -> E_overload.run ~scale
  | "e-scale" -> E_scale.run ~scale
  | "sweep" -> Sweep.run ~scale
  | name -> Printf.eprintf "unknown experiment %S\n" name

(* With --json, each experiment's outcomes (accumulated by
   Experiments.record_outcome) are drained into BENCH_<experiment>.json. *)
let run_one_json ~scale name =
  Experiments.json_rows := [];
  run_one ~scale name;
  if !Experiments.json then begin
    (* The kv campaign's baseline is checked in as BENCH_KV.json, the
       e-scale campaign's as BENCH_SIM.json, and the VBR/Hyaline sweep's
       as BENCH_SWEEP.json. *)
    let file =
      Printf.sprintf "BENCH_%s.json"
        (match name with
        | "kv" -> "KV"
        | "e-scale" -> "SIM"
        | "sweep" -> "SWEEP"
        | n -> n)
    in
    let doc =
      Telemetry.Json.Obj
        [
          ("experiment", Telemetry.Json.String name);
          ( "results",
            Telemetry.Json.List (List.rev !Experiments.json_rows) );
        ]
    in
    let oc = open_out file in
    output_string oc (Telemetry.Json.to_string doc);
    output_char oc '\n';
    close_out oc;
    Printf.printf "json results written to %s\n%!" file
  end

(* --explore: the scheme x structure exploration matrix (the same cells
   as `dune build @lincheck-matrix`), scaled by --full; --explore-domains
   fans the replay jobs across worker domains with identical verdicts. *)
let run_explore ~budget ~workers ~full =
  let max_runs = if full then 2_000 else 300 in
  let cfg =
    {
      Workload.Lin_harness.default_config with
      nprocs = 2;
      ops_per_proc = 3;
      key_range = 2;
      prefill = 1;
    }
  in
  Printf.printf
    "systematic exploration matrix: %d procs x %d ops, preemption budget %d, <=%d schedules/cell%s\n%!"
    cfg.Workload.Lin_harness.nprocs cfg.Workload.Lin_harness.ops_per_proc
    budget max_runs
    (if workers > 1 then Printf.sprintf ", %d domains" workers else "");
  let failures = ref 0 in
  List.iter
    (fun ds ->
      List.iter
        (fun scheme ->
          let v =
            Workload.Lin_harness.explore ~budget ~max_runs ~workers ~ds
              ~scheme cfg
          in
          (match v with
          | Lincheck.Explore.Fail _ -> incr failures
          | Lincheck.Explore.Pass _ -> ());
          Printf.printf "%-9s x %-11s %s\n%!" ds scheme
            (Workload.Lin_harness.verdict_summary v))
        Workload.Lin_harness.scheme_names)
    Workload.Lin_harness.ds_names;
  if !failures > 0 then begin
    Printf.eprintf "exploration: %d cell(s) rejected\n" !failures;
    exit 1
  end

let main experiments backend full sanitize json trace metrics_out chaos_seed
    explore explore_domains check_lin history_out
    (shards, structure, dist, arrival, rate, requests, nkeys, mix, slo, procs,
     explore_free, kv_schemes) (overload_requests, overload_schemes) =
  Kv_bench.shards := shards;
  Kv_bench.structure := structure;
  Kv_bench.dist_name := dist;
  Kv_bench.arrival_name := arrival;
  Kv_bench.arrival_rate := rate;
  Kv_bench.requests := requests;
  Kv_bench.nkeys := nkeys;
  Kv_bench.mix_name := mix;
  Kv_bench.slo_spec := slo;
  Kv_bench.nprocs := procs;
  Kv_bench.explore_free := explore_free;
  Kv_bench.scheme_filter := kv_schemes;
  E_overload.requests := overload_requests;
  E_overload.scheme_filter := overload_schemes;
  E_scale.explore_domains := explore_domains;
  match explore with
  | Some budget -> run_explore ~budget ~workers:explore_domains ~full
  | None ->
  Experiments.backend := backend;
  Experiments.sanitize := sanitize;
  Experiments.json := json;
  Experiments.check_lin := check_lin;
  Experiments.history_out := history_out;
  Stall.trace_file := trace;
  Stall.metrics_file := metrics_out;
  E_chaos.replay_seed := chaos_seed;
  E_overload.replay_seed := chaos_seed;
  let scale =
    if full then Experiments.full_scale else Experiments.quick_scale
  in
  let experiments = if experiments = [] then [ "all" ] else experiments in
  let experiments =
    if List.mem "all" experiments then
      [
        "schemes"; "exp1"; "exp2"; "exp2-t4"; "exp3"; "memfig"; "summary";
        "ablate"; "micro"; "e-stall"; "e-chaos";
      ]
    else experiments
  in
  Printf.printf
    "DEBRA/DEBRA+ reproduction benchmark harness (%s scale, %s backend)\n\
     machine models: %s | %s\n\
     %!"
    (if full then "full" else "quick")
    (Exec.Backend.to_string backend)
    Machine.Config.intel_i7_4770.Machine.Config.name
    Machine.Config.oracle_t4_1.Machine.Config.name;
  List.iter (run_one_json ~scale) experiments;
  if !Experiments.lin_failures > 0 then begin
    Printf.eprintf "linearizability: %d trial(s) rejected\n"
      !Experiments.lin_failures;
    exit 1
  end;
  if !E_chaos.failures > 0 then begin
    Printf.eprintf "e-chaos: %d configuration(s) failed\n" !E_chaos.failures;
    exit 1
  end;
  if !E_overload.failures > 0 then begin
    Printf.eprintf "e-overload: %d cell(s) missed their expectation\n"
      !E_overload.failures;
    exit 1
  end;
  if !E_scale.failures > 0 then begin
    Printf.eprintf "e-scale: %d structure(s) missed their divergence check\n"
      !E_scale.failures;
    exit 1
  end

open Cmdliner

let experiments_arg =
  let doc =
    Printf.sprintf "Experiments to run: %s." (String.concat ", " known)
  in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let backend_arg =
  let parse s =
    match Exec.Backend.of_string s with
    | Ok b -> Ok b
    | Error msg -> Error (`Msg msg)
  in
  let print fmt b = Format.pp_print_string fmt (Exec.Backend.to_string b) in
  let backend_conv = Arg.conv (parse, print) in
  let doc =
    "Execution backend: $(b,sim) (deterministic virtual-time simulator, the \
     default; all published numbers) or $(b,domains) (real OCaml 5 domains \
     on the wall clock; non-deterministic, no cache model, sim-only \
     features degrade gracefully)."
  in
  Arg.(value & opt backend_conv `Sim & info [ "backend" ] ~docv:"BACKEND" ~doc)

let full_arg =
  let doc = "Run at paper scale (large key ranges, dense thread grid)." in
  Arg.(value & flag & info [ "full" ] ~doc)

let sanitize_arg =
  let doc =
    "Run every trial under the shadow-state SMR sanitizer (lib/sanitizer): \
     violations are reported on stderr and flagged !SAN in the tables.  \
     Slows trials down and perturbs timing; all published numbers are \
     measured with this off."
  in
  Arg.(value & flag & info [ "sanitize" ] ~doc)

let json_arg =
  let doc =
    "Attach a telemetry recorder to every trial and write one \
     BENCH_<experiment>.json per experiment (scheme, nprocs, Mops/s, peak \
     bytes, limbo, latency percentiles)."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let trace_arg =
  let doc =
    "Write a Chrome trace-event (catapult JSON) file for the e-stall \
     experiment's DEBRA+ run; load it in chrome://tracing or Perfetto."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let chaos_seed_arg =
  let doc =
    "Replay the e-chaos campaign with this single plan seed (printed by a \
     failing run) instead of the default seed sweep."
  in
  Arg.(value & opt (some int) None & info [ "chaos-seed" ] ~docv:"SEED" ~doc)

let metrics_arg =
  let doc =
    "Write the e-stall experiment's full sampled time series (limbo, epoch \
     lag, pool occupancy per scheme) as JSON to $(docv)."
  in
  Arg.(
    value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let explore_arg =
  let doc =
    "Run the systematic schedule-exploration matrix (every reclamation      scheme x every structure, at most $(docv) preemptions per schedule,      each explored history checked for linearizability) instead of the      experiments.  --full raises the per-cell schedule cap from 300 to      2000.  Exits 1 with a replayable preemption schedule on a violation."
  in
  Arg.(
    value & opt (some int) None & info [ "explore" ] ~docv:"BUDGET" ~doc)

let explore_domains_arg =
  let doc =
    "Worker domains for schedule exploration ($(b,--explore) and the \
     e-scale explore-throughput baseline).  Replay jobs fan out across \
     $(docv) domains with run counts, branch points and verdicts identical \
     to the serial explorer (1, the default)."
  in
  Arg.(
    value & opt int 1 & info [ "explore-domains" ] ~docv:"N" ~doc)

let check_lin_arg =
  let doc =
    "Record every trial's operation history and check it against the      sequential set specification (WGL checker).  Exponential in      concurrency: bench-scale histories typically exceed the checker's      node budget, which is reported per trial; intended for shrunken      runs.  Exits 1 if any checked trial is non-linearizable."
  in
  Arg.(value & flag & info [ "check-linearizability" ] ~doc)

let history_out_arg =
  let doc =
    "Record operation histories and write the last trial's history as      JSON to $(docv) (the format of test/histories/)."
  in
  Arg.(
    value & opt (some string) None & info [ "history-out" ] ~docv:"FILE" ~doc)

(* Flags of the kv experiment (the open-loop E-kv campaign). *)
let kv_args =
  let shards =
    Arg.(
      value & opt int 4
      & info [ "shards" ] ~docv:"N"
          ~doc:"kv: number of store shards (one record manager each).")
  in
  let structure =
    Arg.(
      value & opt string "skiplist"
      & info [ "structure" ] ~docv:"DS"
          ~doc:
            "kv: index structure per shard: $(b,skiplist), $(b,bst), \
             $(b,hm_list) or $(b,hash).")
  in
  let dist =
    Arg.(
      value & opt string "zipfian"
      & info [ "dist" ] ~docv:"DIST"
          ~doc:
            "kv: key-popularity distribution: $(b,uniform), $(b,zipfian) \
             (theta 0.99) or $(b,zipfian:<theta>).")
  in
  let arrival =
    Arg.(
      value & opt string "burst"
      & info [ "arrival" ] ~docv:"PATTERN"
          ~doc:
            "kv: open-loop arrival pattern: $(b,poisson), $(b,burst) (8x \
             peaks) or $(b,burst:<peak-multiplier>).")
  in
  let rate =
    Arg.(
      value & opt float 400_000.0
      & info [ "arrival-rate" ] ~docv:"R"
          ~doc:
            "kv: base arrival rate in requests per second of the backend \
             clock.")
  in
  let requests =
    Arg.(
      value & opt int 0
      & info [ "requests" ] ~docv:"N"
          ~doc:
            "kv: total requests per scheme (0 = 20000, or 100000 with \
             --full).")
  in
  let nkeys =
    Arg.(
      value & opt int 4096
      & info [ "nkeys" ] ~docv:"N" ~doc:"kv: size of the key universe.")
  in
  let mix =
    Arg.(
      value & opt string "session"
      & info [ "mix" ] ~docv:"MIX"
          ~doc:
            "kv: operation mix preset: $(b,read_heavy), $(b,session), \
             $(b,write_heavy) or $(b,scan_heavy).")
  in
  let slo =
    Arg.(
      value & opt string "p99=25000,p999=120000"
      & info [ "slo" ] ~docv:"SPEC"
          ~doc:
            "kv: latency budget per percentile in ns, e.g. \
             $(b,p50=2000,p99=25000,p999=120000); empty = no budget.")
  in
  let procs =
    Arg.(
      value & opt int 4
      & info [ "kv-procs" ] ~docv:"N" ~doc:"kv: worker processes.")
  in
  let explore_free =
    Arg.(
      value & flag
      & info [ "explore-free" ]
          ~doc:
            "kv: run every sim cell twice and fail unless the two JSON \
             rows are byte-identical (deterministic-replay self-check; \
             skipped on the domains backend).")
  in
  let schemes =
    Arg.(
      value & opt string ""
      & info [ "kv-schemes" ] ~docv:"LIST"
          ~doc:
            "kv: comma-separated subset of schemes to run (default all: \
             none,ebr,debra,debra+,hp,vbr,hyaline).")
  in
  Term.(
    const (fun a b c d e f g h i j k l -> (a, b, c, d, e, f, g, h, i, j, k, l))
    $ shards $ structure $ dist $ arrival $ rate $ requests $ nkeys $ mix
    $ slo $ procs $ explore_free $ schemes)

(* Flags of the e-overload campaign. *)
let overload_args =
  let requests =
    Arg.(
      value & opt int 0
      & info [ "overload-requests" ] ~docv:"N"
          ~doc:
            "e-overload: requests per cell (0 = 6000, or 20000 with \
             --full).")
  in
  let schemes =
    Arg.(
      value & opt string ""
      & info [ "overload-schemes" ] ~docv:"LIST"
          ~doc:
            "e-overload: comma-separated subset of schemes to run (default \
             all: none,ebr,qsbr,debra,debra+,hp,rc,ts,st).")
  in
  Term.(const (fun a b -> (a, b)) $ requests $ schemes)

let cmd =
  let doc = "Reproduce the tables and figures of the DEBRA/DEBRA+ paper" in
  Cmd.v
    (Cmd.info "debra-bench" ~doc)
    Term.(
      const main $ experiments_arg $ backend_arg $ full_arg $ sanitize_arg
      $ json_arg $ trace_arg $ metrics_arg $ chaos_seed_arg $ explore_arg
      $ explore_domains_arg $ check_lin_arg $ history_out_arg $ kv_args
      $ overload_args)

let () = exit (Cmd.eval cmd)
